// Package suite assembles the full rtseed-vet analyzer suite and its driver
// logic in one importable place, so the CLI (cmd/rtseed-vet), the in-test
// self-check (internal/lint/selfcheck_test.go), and the CLI tests all run
// exactly the same analysis.
package suite

import (
	"encoding/json"
	"fmt"
	"io"

	"rtseed/internal/lint"
	"rtseed/internal/lint/bodystep"
	"rtseed/internal/lint/determinism"
	"rtseed/internal/lint/detflow"
	"rtseed/internal/lint/eventhandle"
	"rtseed/internal/lint/exhaustive"
	"rtseed/internal/lint/isoshare"
	"rtseed/internal/lint/kernelctx"
	"rtseed/internal/lint/noalloc"
	"rtseed/internal/lint/timeunits"
	"rtseed/internal/lint/waiverdrift"
)

// Analyzers is the vet suite, in reporting order: the per-package invariant
// checkers first (syntactic, then dataflow), then the whole-program
// call-graph and summary-driven analyzers. The module analyzers share one
// ModuleCache per run, so the call graph and function summaries are built
// once and reused by detflow, noalloc, isoshare, kernelctx, bodystep, and
// the waiverdrift audit.
var Analyzers = []*lint.Analyzer{
	determinism.Analyzer,
	detflow.Analyzer,
	noalloc.Analyzer,
	eventhandle.Analyzer,
	exhaustive.Analyzer,
	timeunits.Analyzer,
	isoshare.Analyzer,
	bodystep.Analyzer,
	kernelctx.Analyzer,
	waiverdrift.Analyzer,
}

// WaiverDirectives lists the waiver-class //rtseed: directives — the escape
// hatches whose population Stats reports and lint-budget.json caps. The
// contract annotations (noalloc, kernelctx) are deliberately absent: adding
// one of those strengthens checking, it does not excuse a violation.
var WaiverDirectives = []string{
	lint.DirAllocOK,
	lint.DirHandleOK,
	lint.DirNondeterministic,
	lint.DirPartialOK,
	lint.DirUnitsOK,
	lint.DirBodyStepOK,
	lint.DirSharedOK,
	lint.DirKernelCtxEntry,
}

// Stats is the waiver-directive census of a loaded tree: how many of each
// waiver-class //rtseed: directive the source carries. Every name in
// WaiverDirectives is present (zero-valued when absent) so the JSON shape is
// stable across runs and budget files diff cleanly.
type Stats struct {
	Directives map[string]int `json:"directives"`
}

// Run loads the packages matching patterns (relative to dir) and applies the
// whole suite: per-package analyzers to every package in their scope, module
// analyzers once over the full loaded set. Findings come back sorted by
// position, with malformed-directive problems included.
func Run(dir string, patterns []string) ([]lint.Diagnostic, error) {
	diags, _, err := RunWithStats(dir, patterns)
	return diags, err
}

// RunWithStats is Run plus the waiver-directive census of the loaded
// packages, taken from the same load so the counts describe exactly the tree
// the findings do.
func RunWithStats(dir string, patterns []string) ([]lint.Diagnostic, Stats, error) {
	stats := Stats{Directives: map[string]int{}}
	for _, name := range WaiverDirectives {
		stats.Directives[name] = 0
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		return nil, stats, err
	}
	for _, pkg := range pkgs {
		for _, d := range pkg.Directives.All() {
			if _, ok := stats.Directives[d.Name]; ok {
				stats.Directives[d.Name]++
			}
		}
	}
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, pkg.Directives.Problems...)
		for _, a := range Analyzers {
			if a.RunModule != nil {
				continue
			}
			if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			found, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				return nil, stats, err
			}
			diags = append(diags, found...)
		}
	}
	cache := lint.NewModuleCache()
	for _, a := range Analyzers {
		if a.RunModule == nil {
			continue
		}
		found, err := lint.RunModuleAnalyzerCached(a, pkgs, cache)
		if err != nil {
			return nil, stats, err
		}
		diags = append(diags, found...)
	}
	lint.SortDiagnostics(diags)
	return diags, stats, nil
}

// PrintStats writes the census as indented JSON, the same shape the budget
// file holds, so `rtseed-vet -stats ./... > lint-budget.json` regenerates the
// budget by hand when needed.
func PrintStats(w io.Writer, s Stats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(s)
}

// Print writes findings to w — one go-vet-style file:line:col line each, or
// a JSON array ({analyzer, file, line, col, message}) with -json.
func Print(w io.Writer, diags []lint.Diagnostic, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		if diags == nil {
			diags = []lint.Diagnostic{} // emit [] rather than null
		}
		return enc.Encode(diags)
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	return nil
}
