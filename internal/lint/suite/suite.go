// Package suite assembles the full rtseed-vet analyzer suite and its driver
// logic in one importable place, so the CLI (cmd/rtseed-vet), the in-test
// self-check (internal/lint/selfcheck_test.go), and the CLI tests all run
// exactly the same analysis.
package suite

import (
	"encoding/json"
	"fmt"
	"io"

	"rtseed/internal/lint"
	"rtseed/internal/lint/determinism"
	"rtseed/internal/lint/eventhandle"
	"rtseed/internal/lint/exhaustive"
	"rtseed/internal/lint/kernelctx"
	"rtseed/internal/lint/noalloc"
	"rtseed/internal/lint/waiverdrift"
)

// Analyzers is the vet suite, in reporting order: the per-package invariant
// checkers first, then the whole-program call-graph analyzers.
var Analyzers = []*lint.Analyzer{
	determinism.Analyzer,
	noalloc.Analyzer,
	eventhandle.Analyzer,
	exhaustive.Analyzer,
	kernelctx.Analyzer,
	waiverdrift.Analyzer,
}

// Run loads the packages matching patterns (relative to dir) and applies the
// whole suite: per-package analyzers to every package in their scope, module
// analyzers once over the full loaded set. Findings come back sorted by
// position, with malformed-directive problems included.
func Run(dir string, patterns []string) ([]lint.Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, pkg.Directives.Problems...)
		for _, a := range Analyzers {
			if a.RunModule != nil {
				continue
			}
			if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			found, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, found...)
		}
	}
	for _, a := range Analyzers {
		if a.RunModule == nil {
			continue
		}
		found, err := lint.RunModuleAnalyzer(a, pkgs)
		if err != nil {
			return nil, err
		}
		diags = append(diags, found...)
	}
	lint.SortDiagnostics(diags)
	return diags, nil
}

// Print writes findings to w — one go-vet-style file:line:col line each, or
// a JSON array ({analyzer, file, line, col, message}) with -json.
func Print(w io.Writer, diags []lint.Diagnostic, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		if diags == nil {
			diags = []lint.Diagnostic{} // emit [] rather than null
		}
		return enc.Encode(diags)
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	return nil
}
