// Package summary is the fourth tier of the rtseed-vet analyzer stack:
// per-function summaries computed over the whole-module call graph.
//
// Tier 1 is syntactic (determinism, noalloc's body checks), tier 2 is the
// call graph (kernelctx's reachability), tier 3 is intraprocedural dataflow
// (detflow, timeunits). Each of those stops at a function boundary: a
// wall-clock read laundered through one helper frame, or a package variable
// bumped by a callee, is invisible to them. This package closes that gap by
// computing, for every function body in the loaded set, a conservative
// digest of its caller-visible behavior:
//
//   - ReturnTaint: nondeterminism sources (wall-clock, global rand,
//     environment reads) whose values reach a return value, transitively
//     through callees;
//   - ReturnFromParam: which inputs can flow to a return value;
//   - ParamEscapes: which inputs are stored somewhere that outlives the
//     call (an escaping store, a channel send, a goroutine hand-off);
//   - ParamWrites: which reference-like inputs the function writes through
//     (mutating the caller's object);
//   - GlobalWrites / CapturedWrites: package-level variables and captured
//     outer variables the body writes, directly or via callees;
//   - Alloc: a witness that the body allocates, for noalloc's callee checks.
//
// Summaries are computed bottom-up over the strongly-connected components
// of the call graph's direct tiers (Static/Go/Defer edges), so a callee's
// summary is final before any caller reads it; recursive components iterate
// to a fixpoint (every record only grows, and the lattice is finite, so the
// iteration terminates). Interface and Dynamic edges are deliberately
// excluded: they over-approximate heavily, and a summary that says
// "everything might happen" is worse than one that says "I don't know" —
// consumers fall back to their existing conservative call rules for calls
// the direct tiers cannot resolve.
//
// Every interprocedural record carries a witness (position, owning body,
// and the immediate callee it arrived through), so consumers render real
// call paths — "time.Now (via stamp → now)" — instead of bare verdicts.
package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rtseed/internal/lint"
	"rtseed/internal/lint/callgraph"
)

// Taint kinds, shared with the detflow analyzer's messages.
const (
	KindWallClock = "wall-clock"
	KindRand      = "globally-seeded random"
	KindEnv       = "environment-dependent"
)

// A ParamSet is a bitmask over a function's inputs: the receiver (when there
// is one) has index 0 and the declared parameters follow in order. Inputs
// beyond 64 are silently untracked — a deliberate under-approximation; no
// function in this module comes close.
type ParamSet uint64

// Has reports whether input i is in the set.
func (s ParamSet) Has(i int) bool { return i >= 0 && i < 64 && s&(1<<uint(i)) != 0 }

// Add inserts input i, reporting whether the set changed.
func (s *ParamSet) Add(i int) bool {
	if i < 0 || i >= 64 || s.Has(i) {
		return false
	}
	*s |= 1 << uint(i)
	return true
}

// Union merges o into s, reporting whether s changed.
func (s *ParamSet) Union(o ParamSet) bool {
	if *s|o == *s {
		return false
	}
	*s |= o
	return true
}

// Empty reports whether the set has no members.
func (s ParamSet) Empty() bool { return s == 0 }

// An Origin is one nondeterminism source whose value reaches a function's
// return value.
type Origin struct {
	// Kind is one of the Kind* constants.
	Kind string
	// What names the source call, e.g. "time.Now".
	What string
	// Pos is the source call's position.
	Pos token.Pos
	// Func is the body the source call appears in.
	Func *callgraph.Node
	// Via is the immediate callee the taint arrived through; nil when the
	// source call is in this function's own body. TaintPath follows the
	// chain down to Func.
	Via *callgraph.Node
}

// originKey identifies an origin independent of the hop it arrived through.
type originKey struct {
	kind, what string
	pos        token.Pos
	fn         *callgraph.Node
}

func (o Origin) key() originKey { return originKey{o.Kind, o.What, o.Pos, o.Func} }

// A WriteWitness records one write to a package-level or captured variable:
// where the store (or the call that performs it) is, and which callee it
// happens through.
type WriteWitness struct {
	// Pos is the store's position — in this body, or at the call/argument
	// site when the write happens inside a callee.
	Pos token.Pos
	// Func is the body containing Pos.
	Func *callgraph.Node
	// Via is the immediate callee performing the write; nil for a direct
	// store in this body.
	Via *callgraph.Node
}

// An AllocWitness records one reason a body allocates.
type AllocWitness struct {
	// What names the allocating construct ("append", "closure capturing
	// variables", "call to fmt.Sprintf", ...).
	What string
	// Pos is the allocating construct's position.
	Pos token.Pos
	// Func is the body containing Pos.
	Func *callgraph.Node
	// Via is the immediate callee the allocation happens in; nil when it is
	// in this body.
	Via *callgraph.Node
}

// A Summary is the caller-visible digest of one function body. All fields
// are conservative may-information: absence is a proof of absence over the
// direct call tiers, presence is a witness, and anything reached only
// through Interface/Dynamic edges is out of scope by design.
type Summary struct {
	// Node is the summarized body.
	Node *callgraph.Node

	// ReturnTaint lists nondeterminism sources whose values may reach a
	// return value, in discovery order (deterministic run to run).
	ReturnTaint []Origin
	// ReturnFromParam marks inputs that may flow to a return value.
	ReturnFromParam ParamSet
	// ParamEscapes marks inputs that may be stored somewhere outliving the
	// call: a package variable, a field behind a reference-like input, a
	// captured variable, a channel, a goroutine.
	ParamEscapes ParamSet
	// ParamWrites marks reference-like inputs the body may write through.
	ParamWrites ParamSet
	// GlobalWrites maps package-level variables the body may write (directly
	// or via callees) to a witness each.
	GlobalWrites map[types.Object]*WriteWitness
	// CapturedWrites maps variables captured from enclosing functions that
	// the body may write, to a witness each. Only function literals have
	// entries; a literal's write to its *own* locals never appears.
	CapturedWrites map[types.Object]*WriteWitness
	// Alloc is a witness that the body may allocate, or nil when the direct
	// call tiers prove it allocation-free. Calls into bodies outside the
	// loaded set do not count (the loader sees the whole module, so those
	// are standard-library calls vetted by noalloc's own call rules).
	Alloc *AllocWitness

	sig    *types.Signature
	rtSeen map[originKey]bool
}

// ArgIndex maps position i in a ResolveCall argument list to this function's
// ParamSet index, folding variadic overflow onto the last parameter.
func (sum *Summary) ArgIndex(i int) int {
	offset := 0
	if sum.sig != nil && sum.sig.Recv() != nil {
		offset = 1
	}
	if i < offset {
		return 0
	}
	j := i - offset
	np := 0
	if sum.sig != nil {
		np = sum.sig.Params().Len()
	}
	if np == 0 {
		return offset
	}
	if j >= np-1 && sum.sig.Variadic() {
		j = np - 1
	}
	if j >= np {
		j = np - 1
	}
	return offset + j
}

// A Set holds the summaries of one loaded package set.
type Set struct {
	graph *callgraph.Graph
	sums  map[*callgraph.Node]*Summary
}

// Graph returns the call graph the summaries were computed over.
func (s *Set) Graph() *callgraph.Graph { return s.graph }

// Of returns the summary of n — never nil for a node of the computed graph;
// foreign nodes get an empty (allocating-unknown, nothing-proven) summary.
func (s *Set) Of(n *callgraph.Node) *Summary {
	if sum := s.sums[n]; sum != nil {
		return sum
	}
	return newSummary(n)
}

func newSummary(n *callgraph.Node) *Summary {
	return &Summary{
		Node:           n,
		GlobalWrites:   map[types.Object]*WriteWitness{},
		CapturedWrites: map[types.Object]*WriteWitness{},
		sig:            nodeSig(n),
		rtSeen:         map[originKey]bool{},
	}
}

// Shared returns the summary set of mp's loaded package set, computed once
// per module cache over the shared call graph.
func Shared(mp *lint.ModulePass) *Set {
	return mp.Shared("summary", func() any {
		return Compute(mp.Pkgs, callgraph.Shared(mp))
	}).(*Set)
}

// Compute builds summaries for every body in the graph, bottom-up over the
// SCCs of the direct call tiers.
func Compute(pkgs []*lint.Package, g *callgraph.Graph) *Set {
	_ = pkgs // the graph already carries every loaded body
	s := &Set{graph: g, sums: make(map[*callgraph.Node]*Summary, len(g.Nodes))}
	for _, n := range g.Nodes {
		s.sums[n] = newSummary(n)
	}
	sccs := bottomUpSCCs(g)
	for _, scc := range sccs {
		for {
			changed := false
			for _, n := range scc {
				if computeOne(s, n) {
					changed = true
				}
			}
			if !changed || !isRecursive(scc) {
				break
			}
		}
	}
	for _, n := range g.Nodes {
		intrinsicAlloc(s.sums[n], n)
	}
	for _, scc := range sccs {
		for {
			changed := false
			for _, n := range scc {
				if propagateAlloc(s, n) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return s
}

// ResolveCall resolves a call expression to the summarized callee, or
// (nil, nil) for calls the direct tiers cannot name: builtins, conversions,
// interface methods, func-typed values, and bodies outside the loaded set.
// The returned argument list is aligned with ParamSet indexing: for a bound
// method call the receiver expression is prepended, and for a method
// expression call (T.M(recv, ...)) the explicit receiver is already first.
func (s *Set) ResolveCall(info *types.Info, call *ast.CallExpr) (*Summary, []ast.Expr) {
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		if n := s.graph.LitNode(lit); n != nil {
			return s.Of(n), call.Args
		}
		return nil, nil
	}
	// Peel generic instantiation syntax f[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var id *ast.Ident
	var recv ast.Expr
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			recv = f.X
		}
	}
	if id == nil {
		return nil, nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil, nil
	}
	n := s.graph.NodeFor(fn)
	if n == nil {
		return nil, nil
	}
	args := call.Args
	if recv != nil {
		args = append([]ast.Expr{recv}, args...)
	}
	return s.Of(n), args
}

// TaintPath returns the callee chain from n down to the body containing the
// origin's source call, for "via a → b" diagnostics. o must be an entry of
// n's ReturnTaint (or a copy of one).
func (s *Set) TaintPath(n *callgraph.Node, o Origin) []*callgraph.Node {
	path := []*callgraph.Node{n}
	seen := map[*callgraph.Node]bool{n: true}
	for o.Via != nil && !seen[o.Via] {
		next := o.Via
		path = append(path, next)
		seen[next] = true
		found := false
		for _, oo := range s.Of(next).ReturnTaint {
			if oo.key() == o.key() {
				o, found = oo, true
				break
			}
		}
		if !found {
			break
		}
	}
	return path
}

// AllocPath returns the callee chain from n down to the body containing its
// allocation witness.
func (s *Set) AllocPath(n *callgraph.Node) []*callgraph.Node {
	path := []*callgraph.Node{n}
	seen := map[*callgraph.Node]bool{n: true}
	for {
		w := s.Of(n).Alloc
		if w == nil || w.Via == nil || seen[w.Via] {
			return path
		}
		n = w.Via
		path = append(path, n)
		seen[n] = true
	}
}

// WritePath returns the callee chain from n down to the body that writes
// obj (a GlobalWrites or CapturedWrites key of n's summary).
func (s *Set) WritePath(n *callgraph.Node, obj types.Object) []*callgraph.Node {
	path := []*callgraph.Node{n}
	seen := map[*callgraph.Node]bool{n: true}
	for {
		sum := s.Of(n)
		w := sum.GlobalWrites[obj]
		if w == nil {
			w = sum.CapturedWrites[obj]
		}
		if w == nil || w.Via == nil || seen[w.Via] {
			return path
		}
		n = w.Via
		path = append(path, n)
		seen[n] = true
	}
}

// Callee resolves the declared function or method a call invokes, or nil
// for builtins, conversions, and dynamic calls — the free-function twin of
// lint.Pass.CalleeFunc for code that holds only a *types.Info.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// clockValueFuncs are the time functions whose results depend on the host
// clock; the blocking ones (Sleep, NewTimer, ...) belong to the syntactic
// determinism analyzer — blocking is a side effect, not a value.
var clockValueFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// envValueFuncs read the process environment.
var envValueFuncs = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true}

// Source recognizes a call whose result is nondeterministic at the source:
// wall-clock reads, draws from the process-global math/rand source, and
// environment reads. This is the one table both the summary computation and
// the detflow analyzer consult, so the two tiers can never disagree about
// what counts as a source.
func Source(info *types.Info, call *ast.CallExpr) (kind, what string, ok bool) {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	sig, sok := fn.Type().(*types.Signature)
	if !sok || sig.Recv() != nil { // methods (e.g. on a seeded *rand.Rand) are fine
		return "", "", false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "time" && clockValueFuncs[name]:
		return KindWallClock, "time." + name, true
	case (path == "math/rand" || path == "math/rand/v2") && !strings.HasPrefix(name, "New"):
		return KindRand, path + "." + name, true
	case path == "os" && envValueFuncs[name]:
		return KindEnv, "os." + name, true
	}
	return "", "", false
}

// nodeSig returns a node's function signature.
func nodeSig(n *callgraph.Node) *types.Signature {
	if n.Func != nil {
		sig, _ := n.Func.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		if tv, ok := n.Pkg.TypesInfo.Types[n.Lit]; ok && tv.Type != nil {
			if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// nodeBody returns the node's function body.
func nodeBody(n *callgraph.Node) *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// isPkgVar reports whether obj is a package-level variable (of any loaded
// or imported package).
func isPkgVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// rootObj walks selector/index/star/slice chains to the base variable: the
// object whose storage a write to the expression mutates. Unlike detflow's
// intraprocedural twin it also resolves qualified identifiers (pkg.Var), so
// cross-package variable writes land in GlobalWrites.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return rootObj(info, e.X)
	case *ast.StarExpr:
		return rootObj(info, e.X)
	case *ast.UnaryExpr:
		return rootObj(info, e.X)
	case *ast.SelectorExpr:
		if _, ok := info.Selections[e]; !ok {
			// A qualified identifier (pkg.Var), not a field selection.
			if obj, ok := info.Uses[e.Sel].(*types.Var); ok {
				return obj
			}
			return nil
		}
		return rootObj(info, e.X)
	case *ast.IndexExpr:
		return rootObj(info, e.X)
	case *ast.SliceExpr:
		return rootObj(info, e.X)
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if _, ok := obj.(*types.Var); !ok {
			return nil
		}
		return obj
	}
	return nil
}

// referenceLike reports whether a store through a value of this type is
// visible to the caller: pointers, maps, slices, channels, interfaces.
func referenceLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}
