package summary

import "rtseed/internal/lint/callgraph"

// directEdge reports whether an edge participates in summary propagation:
// the direct call tiers only. Ref edges are references, not invocations,
// and Interface/Dynamic edges over-approximate too much to feed summaries
// (see the package doc).
func directEdge(k callgraph.EdgeKind) bool {
	switch k {
	case callgraph.Static, callgraph.Go, callgraph.Defer:
		return true
	case callgraph.Ref, callgraph.Interface, callgraph.Dynamic:
		return false
	}
	return false
}

// bottomUpSCCs returns the strongly-connected components of the direct call
// tiers in bottom-up (callees-first) order: Tarjan emits an SCC only after
// every SCC it calls into, which is exactly the order summary computation
// needs. Node iteration follows g.Nodes, so the result is deterministic.
func bottomUpSCCs(g *callgraph.Graph) [][]*callgraph.Node {
	t := &tarjan{
		index: make(map[*callgraph.Node]int, len(g.Nodes)),
		low:   make(map[*callgraph.Node]int, len(g.Nodes)),
		on:    make(map[*callgraph.Node]bool, len(g.Nodes)),
	}
	for _, n := range g.Nodes {
		if _, ok := t.index[n]; !ok {
			t.visit(n)
		}
	}
	return t.sccs
}

type tarjan struct {
	counter    int
	index, low map[*callgraph.Node]int
	on         map[*callgraph.Node]bool
	stack      []*callgraph.Node
	sccs       [][]*callgraph.Node
}

func (t *tarjan) visit(n *callgraph.Node) {
	t.index[n] = t.counter
	t.low[n] = t.counter
	t.counter++
	t.stack = append(t.stack, n)
	t.on[n] = true
	for _, e := range n.Out {
		if !directEdge(e.Kind) {
			continue
		}
		m := e.Callee
		if _, ok := t.index[m]; !ok {
			t.visit(m)
			if t.low[m] < t.low[n] {
				t.low[n] = t.low[m]
			}
		} else if t.on[m] && t.index[m] < t.low[n] {
			t.low[n] = t.index[m]
		}
	}
	if t.low[n] == t.index[n] {
		var scc []*callgraph.Node
		for {
			m := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.on[m] = false
			scc = append(scc, m)
			if m == n {
				break
			}
		}
		t.sccs = append(t.sccs, scc)
	}
}

// isRecursive reports whether an SCC needs fixpoint iteration: more than
// one member, or a single body that calls itself directly.
func isRecursive(scc []*callgraph.Node) bool {
	if len(scc) > 1 {
		return true
	}
	for _, e := range scc[0].Out {
		if directEdge(e.Kind) && e.Callee == scc[0] {
			return true
		}
	}
	return false
}
