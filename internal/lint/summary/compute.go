package summary

import (
	"go/ast"
	"go/token"
	"go/types"

	"rtseed/internal/lint/callgraph"
	"rtseed/internal/lint/dataflow"
)

// label is the abstract value flowing through a body during summary
// computation: which nondeterminism origin (at most one — any witness is as
// good as another) and which of the function's own inputs the value may
// carry. Labels are comparable, so the lattice join can detect growth.
type label struct {
	origin    Origin
	hasOrigin bool
	params    ParamSet
}

func (l label) empty() bool { return !l.hasOrigin && l.params.Empty() }

// mergeLabel unions two labels; the first origin wins (deterministic: the
// solver visits nodes in block order).
func mergeLabel(a, b label) label {
	if !a.hasOrigin && b.hasOrigin {
		a.origin, a.hasOrigin = b.origin, true
	}
	a.params |= b.params
	return a
}

// comp computes one body's contribution to its summary. The summary is
// updated in place and only ever grows; changed records whether this run
// added anything, which drives the SCC fixpoint.
type comp struct {
	set  *Set
	node *callgraph.Node
	info *types.Info
	sum  *Summary

	// paramIdx maps the receiver and parameter objects to ParamSet indices;
	// refParam marks the reference-like ones (writes through them are
	// caller-visible).
	paramIdx map[types.Object]int
	refParam map[types.Object]bool
	// results are the named result objects, in order, for naked returns.
	results []types.Object
	// fnPos/fnEnd bound the body; objects declared outside are captured
	// from an enclosing function (or package-level, checked first).
	fnPos, fnEnd token.Pos

	changed bool
}

// computeOne runs the dataflow over n's body, folding what it learns into
// n's summary, and reports whether the summary grew.
func computeOne(s *Set, n *callgraph.Node) bool {
	body := nodeBody(n)
	if body == nil {
		return false
	}
	c := &comp{
		set:      s,
		node:     n,
		info:     n.Pkg.TypesInfo,
		sum:      s.sums[n],
		paramIdx: map[types.Object]int{},
		refParam: map[types.Object]bool{},
		fnEnd:    body.End(),
	}
	c.bind()

	cfg := dataflow.BuildCFG(body)
	prob := dataflow.Problem[dataflow.State[label]]{
		Entry: func() dataflow.State[label] {
			st := dataflow.State[label]{}
			for obj, idx := range c.paramIdx {
				var p ParamSet
				p.Add(idx)
				st[dataflow.Key{Obj: obj}] = label{params: p}
			}
			return st
		},
		Copy: func(s dataflow.State[label]) dataflow.State[label] { return s.Copy() },
		Join: func(dst, src dataflow.State[label]) bool {
			// Unlike State.Merge, union the labels themselves: dropping one
			// branch's param bits would lose ReturnFromParam facts.
			changed := false
			for k, sv := range src {
				if dv, ok := dst[k]; ok {
					if m := mergeLabel(dv, sv); m != dv {
						dst[k] = m
						changed = true
					}
				} else {
					dst[k] = sv
					changed = true
				}
			}
			return changed
		},
		Node: func(n ast.Node, s dataflow.State[label]) { c.transfer(n, s) },
	}
	dataflow.Forward(cfg, prob)
	return c.changed
}

// bind assigns ParamSet indices (receiver first, then parameters, unnamed
// slots counted) and collects the named results.
func (c *comp) bind() {
	idx := 0
	addList := func(fl *ast.FieldList, ref bool) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				idx++ // unnamed input still occupies an index
				continue
			}
			for _, name := range f.Names {
				if obj := c.info.Defs[name]; obj != nil {
					c.paramIdx[obj] = idx
					if ref && referenceLike(obj.Type()) {
						c.refParam[obj] = true
					}
				}
				idx++
			}
		}
	}
	var fnType *ast.FuncType
	if c.node.Decl != nil {
		addList(c.node.Decl.Recv, true)
		fnType = c.node.Decl.Type
	} else {
		fnType = c.node.Lit.Type
	}
	c.fnPos = fnType.Pos()
	addList(fnType.Params, true)
	if fnType.Results != nil {
		for _, f := range fnType.Results.List {
			for _, name := range f.Names {
				if obj := c.info.Defs[name]; obj != nil {
					c.results = append(c.results, obj)
				}
			}
		}
	}
}

// Summary mutators — each reports growth into c.changed.

func (c *comp) escape(l label) {
	if c.sum.ParamEscapes.Union(l.params) {
		c.changed = true
	}
}

func (c *comp) addParamWrite(idx int) {
	if c.sum.ParamWrites.Add(idx) {
		c.changed = true
	}
}

func (c *comp) addGlobalWrite(obj types.Object, w *WriteWitness) {
	if _, ok := c.sum.GlobalWrites[obj]; ok {
		return
	}
	c.sum.GlobalWrites[obj] = w
	c.changed = true
}

func (c *comp) addCapturedWrite(obj types.Object, w *WriteWitness) {
	if _, ok := c.sum.CapturedWrites[obj]; ok {
		return
	}
	c.sum.CapturedWrites[obj] = w
	c.changed = true
}

func (c *comp) addReturn(l label) {
	if c.sum.ReturnFromParam.Union(l.params) {
		c.changed = true
	}
	if l.hasOrigin && !c.sum.rtSeen[l.origin.key()] {
		c.sum.rtSeen[l.origin.key()] = true
		c.sum.ReturnTaint = append(c.sum.ReturnTaint, l.origin)
		c.changed = true
	}
}

// transfer applies one CFG node's effect to the state, recording summary
// facts along the way.
func (c *comp) transfer(n ast.Node, s dataflow.State[label]) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			// x op= y folds both operands into x, and writes x in place.
			syn := &ast.BinaryExpr{X: n.Lhs[0], OpPos: n.TokPos, Op: token.ADD, Y: n.Rhs[0]}
			c.assign(n.Lhs[0], syn, s)
			return
		}
		dataflow.ForEachAssign(n, func(lhs, rhs ast.Expr) { c.assign(lhs, rhs, s) })
	case *ast.DeclStmt:
		dataflow.ForEachAssign(n, func(lhs, rhs ast.Expr) { c.assign(lhs, rhs, s) })
	case *ast.IncDecStmt:
		// x++ writes x in place (and keeps its label).
		c.recordWrite(n.X, n.X.Pos(), nil)
	case *ast.RangeStmt:
		lbl := c.eval(n.X, s)
		for _, v := range []ast.Expr{n.Key, n.Value} {
			if v == nil {
				continue
			}
			if !lbl.empty() {
				s.Set(c.info, v, lbl)
			} else {
				s.Clear(c.info, v)
			}
		}
	case *ast.ReturnStmt:
		if len(n.Results) > 0 {
			for _, r := range n.Results {
				c.addReturn(c.eval(r, s))
			}
		} else {
			for _, obj := range c.results {
				c.addReturn(c.labelOfObj(s, obj))
			}
		}
	case *ast.SendStmt:
		c.eval(n.Chan, s)
		c.escape(c.eval(n.Value, s))
	case *ast.ExprStmt:
		c.eval(n.X, s)
	case *ast.GoStmt:
		c.callExpr(n.Call, s, true)
	case *ast.DeferStmt:
		c.eval(n.Call, s)
	case ast.Expr:
		c.eval(n, s)
	}
}

// labelOfObj unions the labels of every key rooted at obj (the object and
// its field paths), for naked returns of named results.
func (c *comp) labelOfObj(s dataflow.State[label], obj types.Object) label {
	var out label
	for k, l := range s {
		if k.Obj == obj {
			out = mergeLabel(out, l)
		}
	}
	return out
}

// assign applies one lhs = rhs binding: records the write, notes escaping
// stores of labeled values, and carries labels forward.
func (c *comp) assign(lhs, rhs ast.Expr, s dataflow.State[label]) {
	if rhs == nil {
		s.Clear(c.info, lhs)
		return
	}
	lbl := c.eval(rhs, s)
	c.recordWrite(lhs, lhs.Pos(), nil)
	if !lbl.empty() && c.storeEscapes(lhs) {
		c.escape(lbl)
	}
	if _, keyable := dataflow.KeyOf(c.info, rhs); keyable {
		s.Assign(c.info, lhs, rhs)
		return
	}
	if !lbl.empty() {
		s.Set(c.info, lhs, lbl)
	} else {
		s.Clear(c.info, lhs)
	}
}

// recordWrite classifies a write to lhs's root: package variable, write
// through a reference-like input, or captured variable. via is the callee
// performing the write for call-mediated writes, nil for direct stores.
func (c *comp) recordWrite(lhs ast.Expr, pos token.Pos, via *callgraph.Node) {
	obj := rootObj(c.info, lhs)
	if obj == nil {
		return
	}
	_, plain := ast.Unparen(lhs).(*ast.Ident)
	switch {
	case isPkgVar(obj):
		c.addGlobalWrite(obj, &WriteWitness{Pos: pos, Func: c.node, Via: via})
	case hasParam(c.paramIdx, obj):
		// Rebinding the parameter name itself is local; writing through a
		// reference-like parameter mutates the caller's object.
		if !plain && c.refParam[obj] {
			c.addParamWrite(c.paramIdx[obj])
		}
	case obj.Pos() < c.fnPos || obj.Pos() > c.fnEnd:
		c.addCapturedWrite(obj, &WriteWitness{Pos: pos, Func: c.node, Via: via})
	}
}

func hasParam(m map[types.Object]int, obj types.Object) bool {
	_, ok := m[obj]
	return ok
}

// storeEscapes reports whether a store to lhs is visible after this call
// returns: package variables, locations behind reference-like inputs, and
// captured variables. Named results are not escapes here — their values
// surface at return statements as ReturnTaint/ReturnFromParam instead.
func (c *comp) storeEscapes(lhs ast.Expr) bool {
	obj := rootObj(c.info, lhs)
	if obj == nil {
		return false
	}
	if isPkgVar(obj) {
		return true
	}
	if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
		return false
	}
	if c.refParam[obj] {
		return true
	}
	return obj.Pos() < c.fnPos || obj.Pos() > c.fnEnd
}

// eval computes the label of an expression, applying call effects along the
// way.
func (c *comp) eval(e ast.Expr, s dataflow.State[label]) label {
	if e == nil {
		return label{}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.eval(e.X, s)
	case *ast.Ident:
		l, _ := s.Get(c.info, e)
		return l
	case *ast.SelectorExpr:
		if l, ok := s.Get(c.info, e); ok {
			return l
		}
		return c.eval(e.X, s)
	case *ast.CallExpr:
		return c.callExpr(e, s, false)
	case *ast.BinaryExpr:
		return mergeLabel(c.eval(e.X, s), c.eval(e.Y, s))
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return label{} // channel receive: contents unknown
		}
		return c.eval(e.X, s)
	case *ast.StarExpr:
		return c.eval(e.X, s)
	case *ast.IndexExpr:
		return mergeLabel(c.eval(e.X, s), c.eval(e.Index, s))
	case *ast.SliceExpr:
		return c.eval(e.X, s)
	case *ast.CompositeLit:
		var out label
		for _, el := range e.Elts {
			out = mergeLabel(out, c.eval(el, s))
		}
		return out
	case *ast.KeyValueExpr:
		return c.eval(e.Value, s)
	case *ast.TypeAssertExpr:
		return c.eval(e.X, s)
	case *ast.FuncLit:
		return label{} // its own node carries its summary
	}
	return label{}
}

// callExpr applies a call's effects and computes its result label. spawned
// marks go-statement calls: their arguments outlive the caller's frame.
func (c *comp) callExpr(e *ast.CallExpr, s dataflow.State[label], spawned bool) label {
	if kind, what, ok := Source(c.info, e); ok {
		for _, a := range e.Args {
			c.eval(a, s)
		}
		return label{
			origin:    Origin{Kind: kind, What: what, Pos: e.Pos(), Func: c.node},
			hasOrigin: true,
		}
	}

	callee, args := c.set.ResolveCall(c.info, e)
	if callee != nil {
		albls := make([]label, len(args))
		for i, a := range args {
			albls[i] = c.eval(a, s)
		}
		for i, a := range args {
			pidx := callee.ArgIndex(i)
			if callee.ParamEscapes.Has(pidx) || spawned {
				c.escape(albls[i])
			}
			if callee.ParamWrites.Has(pidx) {
				c.recordWrite(a, a.Pos(), callee.Node)
			}
		}
		for obj, w := range callee.GlobalWrites {
			c.addGlobalWrite(obj, &WriteWitness{Pos: w.Pos, Func: w.Func, Via: callee.Node})
		}
		for obj, w := range callee.CapturedWrites {
			// A nested literal writing one of *my* locals is a local effect;
			// writing one of my reference-like parameters is a param write,
			// and anything captured from further out propagates up as-is.
			switch {
			case hasParam(c.paramIdx, obj):
				if c.refParam[obj] {
					c.addParamWrite(c.paramIdx[obj])
				}
			case obj.Pos() < c.fnPos || obj.Pos() > c.fnEnd:
				c.addCapturedWrite(obj, &WriteWitness{Pos: w.Pos, Func: w.Func, Via: callee.Node})
			}
		}
		var out label
		if len(callee.ReturnTaint) > 0 {
			o := callee.ReturnTaint[0]
			o.Via = callee.Node
			out = label{origin: o, hasOrigin: true}
		}
		for i := range args {
			if callee.ReturnFromParam.Has(callee.ArgIndex(i)) {
				out = mergeLabel(out, albls[i])
			}
		}
		return out
	}

	// Unresolved (builtin, conversion, out-of-set body, interface or
	// func-value call): the conservative rule — receiver and argument
	// labels flow to the result; a spawned call makes them escape.
	var out label
	if se, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
		out = mergeLabel(out, c.eval(se.X, s))
	}
	for _, a := range e.Args {
		out = mergeLabel(out, c.eval(a, s))
	}
	if spawned {
		c.escape(out)
	}
	return out
}
