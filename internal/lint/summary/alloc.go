package summary

import (
	"go/ast"
	"go/token"
	"go/types"

	"rtseed/internal/lint"
	"rtseed/internal/lint/callgraph"
)

// intrinsicAlloc walks one body for allocating constructs — the structural
// subset of the noalloc analyzer's checks: make/new/append, slice and map
// literals, &composite, non-constant string concatenation, fmt calls, go
// statements, and capturing closures. Two deliberate scope cuts: argument
// subtrees of panic calls are exempt (a panic is the cold path by contract,
// the same exemption the noalloc analyzer applies), and nested literal
// bodies are skipped — their allocations belong to the literal's own node
// and propagate to callers only if the literal is actually invoked.
// Interface-boxing at call boundaries stays with the noalloc analyzer's
// per-body checks; the summary tier tracks the structural allocators.
func intrinsicAlloc(sum *Summary, n *callgraph.Node) {
	body := nodeBody(n)
	if body == nil {
		return
	}
	info := n.Pkg.TypesInfo
	set := func(what string, pos token.Pos) {
		if sum.Alloc == nil {
			sum.Alloc = &AllocWitness{What: what, Pos: pos, Func: n}
		}
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if sum.Alloc != nil {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			if capturesOutside(info, x) {
				set("closure capturing variables", x.Pos())
			}
			return false
		case *ast.GoStmt:
			set("go statement", x.Pos())
		case *ast.CallExpr:
			if isPanicCall(info, x) {
				return false
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						set(b.Name(), x.Pos())
					}
				}
			}
			if fn := Callee(info, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				set("call to fmt."+fn.Name(), x.Pos())
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					set("slice literal", x.Pos())
				case *types.Map:
					set("map literal", x.Pos())
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					set("&composite literal", x.Pos())
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := info.Types[x]; ok && tv.Value == nil && isString(tv.Type) {
					set("string concatenation", x.Pos())
				}
			}
		}
		return true
	})
}

// propagateAlloc pulls a callee's allocation witness into n over the direct
// call tiers, reporting whether n's summary changed. Callees annotated
// //rtseed:noalloc are trusted, not propagated: their contract is
// zero-allocation and any waived line inside them is a reviewed exception,
// so surfacing it again at every transitive caller would turn one reviewed
// waiver into a cascade of findings.
func propagateAlloc(s *Set, n *callgraph.Node) bool {
	sum := s.sums[n]
	if sum.Alloc != nil {
		return false
	}
	for _, e := range n.Out {
		if !directEdge(e.Kind) {
			continue
		}
		cs := s.sums[e.Callee]
		if cs == nil || cs.Alloc == nil || NoallocAnnotated(e.Callee) {
			continue
		}
		sum.Alloc = &AllocWitness{What: cs.Alloc.What, Pos: cs.Alloc.Pos, Func: cs.Alloc.Func, Via: e.Callee}
		return true
	}
	return false
}

// NoallocAnnotated reports whether the node is a declaration carrying the
// //rtseed:noalloc directive — a body whose zero-allocation contract the
// noalloc analyzer checks directly.
func NoallocAnnotated(n *callgraph.Node) bool {
	return n.Decl != nil && n.Pkg.Directives.ForDecl(n.Pkg.Fset, n.Decl, lint.DirNoalloc) != nil
}

// isPanicCall reports a direct call to the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// capturesOutside reports whether a literal references variables declared
// outside its own bounds (other than package-level ones) — the closures the
// compiler heap-allocates an environment for.
func capturesOutside(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || isPkgVar(v) {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
		}
		return true
	})
	return found
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
