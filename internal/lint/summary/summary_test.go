package summary_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"rtseed/internal/lint"
	"rtseed/internal/lint/callgraph"
	"rtseed/internal/lint/summary"
)

const src = `package a

import (
	"fmt"
	"os"
	"time"
)

var counter int
var gauge = map[string]int{}

func now() time.Time { return time.Now() }

func stamp() time.Time {
	t := now()
	return t
}

func launder(t time.Time) time.Time { return t }

func pick(mode string) string {
	if mode == "" {
		return os.Getenv("MODE")
	}
	return mode
}

func bump(p *int) { *p++ }

func bumpCounter() { bump(&counter) }

func store(dst *[]int, v int) { *dst = append(*dst, v) }

func record(k string) { gauge[k]++ }

func callsRecord(k string) { record(k) }

func describe(n int) string { return fmt.Sprintf("%d", n) }

func viaDescribe(n int) string { return describe(n) }

func pure(a, b int) int { return a + b }

func failfast(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n))
	}
	return n
}

func mutual(n int) int {
	if n == 0 {
		return 0
	}
	return mutual2(n - 1)
}

func mutual2(n int) int { return mutual(n) + int(time.Now().Unix()) }

func closureCounter() func() {
	n := 0
	return func() {
		n++
		counter++
	}
}

func fill(out []int) {
	for i := range out {
		func(j int) { out[j] = j }(i)
	}
}
`

// load type-checks the test source against real export data, so the "time",
// "os", and "fmt" imports resolve exactly as they do under the driver.
func load(t *testing.T) (*lint.Package, *callgraph.Graph, *summary.Set) {
	t.Helper()
	fset := token.NewFileSet()
	imp, err := lint.NewImporter(fset, "../../..", "fmt", "os", "time")
	if err != nil {
		t.Fatalf("building importer: %v", err)
	}
	file, err := parser.ParseFile(fset, "a/src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg, err := lint.NewPackage(fset, "example/a", "", []*ast.File{file}, imp)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	g := callgraph.Build([]*lint.Package{pkg})
	return pkg, g, summary.Compute([]*lint.Package{pkg}, g)
}

func nodeByName(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

func pkgVar(t *testing.T, pkg *lint.Package, name string) types.Object {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		t.Fatalf("no package variable %s", name)
	}
	return obj
}

func TestReturnTaintCrossesFrames(t *testing.T) {
	_, g, set := load(t)
	stamp := set.Of(nodeByName(t, g, "a.stamp"))
	if len(stamp.ReturnTaint) != 1 {
		t.Fatalf("stamp ReturnTaint = %v, want one origin", stamp.ReturnTaint)
	}
	o := stamp.ReturnTaint[0]
	if o.Kind != summary.KindWallClock || o.What != "time.Now" {
		t.Errorf("stamp origin = %q %q, want wall-clock time.Now", o.Kind, o.What)
	}
	if o.Func != nodeByName(t, g, "a.now") {
		t.Errorf("origin Func = %v, want a.now", o.Func.Name())
	}
	path := set.TaintPath(stamp.Node, o)
	if got := callgraph.FormatPath(path); got != "a.stamp → a.now" {
		t.Errorf("TaintPath = %q, want %q", got, "a.stamp → a.now")
	}
}

func TestReturnFromParamWithoutTaint(t *testing.T) {
	_, g, set := load(t)
	launder := set.Of(nodeByName(t, g, "a.launder"))
	if !launder.ReturnFromParam.Has(0) {
		t.Error("launder should return its parameter")
	}
	if len(launder.ReturnTaint) != 0 {
		t.Errorf("launder ReturnTaint = %v, want none", launder.ReturnTaint)
	}
	pick := set.Of(nodeByName(t, g, "a.pick"))
	if !pick.ReturnFromParam.Has(0) {
		t.Error("pick should return its parameter on one path")
	}
	if len(pick.ReturnTaint) != 1 || pick.ReturnTaint[0].Kind != summary.KindEnv {
		t.Errorf("pick ReturnTaint = %v, want one environment origin", pick.ReturnTaint)
	}
}

func TestParamAndGlobalWrites(t *testing.T) {
	pkg, g, set := load(t)
	bump := set.Of(nodeByName(t, g, "a.bump"))
	if !bump.ParamWrites.Has(0) {
		t.Error("bump should write through its pointer parameter")
	}
	counter := pkgVar(t, pkg, "counter")
	bc := set.Of(nodeByName(t, g, "a.bumpCounter"))
	w := bc.GlobalWrites[counter]
	if w == nil {
		t.Fatal("bumpCounter should write counter via bump")
	}
	if w.Via != bump.Node {
		t.Errorf("counter write Via = %v, want a.bump", w.Via)
	}
	if got := callgraph.FormatPath(set.WritePath(bc.Node, counter)); got != "a.bumpCounter → a.bump" {
		t.Errorf("WritePath = %q", got)
	}

	gauge := pkgVar(t, pkg, "gauge")
	record := set.Of(nodeByName(t, g, "a.record"))
	if w := record.GlobalWrites[gauge]; w == nil || w.Via != nil {
		t.Errorf("record should write gauge directly, got %+v", w)
	}
	cr := set.Of(nodeByName(t, g, "a.callsRecord"))
	if w := cr.GlobalWrites[gauge]; w == nil || w.Via != record.Node {
		t.Errorf("callsRecord should write gauge via record, got %+v", w)
	}
}

func TestParamEscapes(t *testing.T) {
	_, g, set := load(t)
	store := set.Of(nodeByName(t, g, "a.store"))
	if !store.ParamWrites.Has(0) {
		t.Error("store should write through dst")
	}
	if !store.ParamEscapes.Has(1) {
		t.Error("store should record v as escaping (appended into *dst)")
	}
}

func TestAllocWitnesses(t *testing.T) {
	_, g, set := load(t)
	describe := set.Of(nodeByName(t, g, "a.describe"))
	if describe.Alloc == nil || describe.Alloc.What != "call to fmt.Sprintf" {
		t.Fatalf("describe Alloc = %+v, want fmt.Sprintf witness", describe.Alloc)
	}
	via := set.Of(nodeByName(t, g, "a.viaDescribe"))
	if via.Alloc == nil || via.Alloc.Via != describe.Node {
		t.Fatalf("viaDescribe Alloc = %+v, want witness via a.describe", via.Alloc)
	}
	if got := callgraph.FormatPath(set.AllocPath(via.Node)); got != "a.viaDescribe → a.describe" {
		t.Errorf("AllocPath = %q", got)
	}
	if pure := set.Of(nodeByName(t, g, "a.pure")); pure.Alloc != nil {
		t.Errorf("pure Alloc = %+v, want nil", pure.Alloc)
	}
	if ff := set.Of(nodeByName(t, g, "a.failfast")); ff.Alloc != nil {
		t.Errorf("failfast Alloc = %+v, want nil (panic arguments are the cold path)", ff.Alloc)
	}
}

func TestPureFunctionSummaryIsClean(t *testing.T) {
	_, g, set := load(t)
	pure := set.Of(nodeByName(t, g, "a.pure"))
	if len(pure.ReturnTaint) != 0 || !pure.ParamWrites.Empty() ||
		!pure.ParamEscapes.Empty() || len(pure.GlobalWrites) != 0 {
		t.Errorf("pure summary not clean: %+v", pure)
	}
	if !pure.ReturnFromParam.Has(0) || !pure.ReturnFromParam.Has(1) {
		t.Error("pure returns both parameters")
	}
}

func TestRecursiveSCCReachesFixpoint(t *testing.T) {
	_, g, set := load(t)
	for _, name := range []string{"a.mutual", "a.mutual2"} {
		sum := set.Of(nodeByName(t, g, name))
		found := false
		for _, o := range sum.ReturnTaint {
			if o.Kind == summary.KindWallClock {
				found = true
			}
		}
		if !found {
			t.Errorf("%s should carry wall-clock return taint through the recursion", name)
		}
	}
}

func TestClosureCapturedWrites(t *testing.T) {
	pkg, g, set := load(t)
	lit := set.Of(nodeByName(t, g, "a.closureCounter$1"))
	counter := pkgVar(t, pkg, "counter")
	if lit.GlobalWrites[counter] == nil {
		t.Error("closure should record its counter write")
	}
	foundCaptured := false
	for obj := range lit.CapturedWrites {
		if obj.Name() == "n" {
			foundCaptured = true
		}
	}
	if !foundCaptured {
		t.Error("closure should record its captured-variable write to n")
	}
	cc := set.Of(nodeByName(t, g, "a.closureCounter"))
	if cc.Alloc == nil {
		t.Error("closureCounter allocates a capturing closure")
	}
}

func TestIIFECapturedParamBecomesParamWrite(t *testing.T) {
	_, g, set := load(t)
	fill := set.Of(nodeByName(t, g, "a.fill"))
	if !fill.ParamWrites.Has(0) {
		t.Error("fill's immediately-invoked literal writes out, which is fill's parameter")
	}
}

func TestResolveCallAlignment(t *testing.T) {
	pkg, g, set := load(t)
	// Find the bump(&counter) call inside bumpCounter and resolve it.
	var call *ast.CallExpr
	bc := nodeByName(t, g, "a.bumpCounter")
	ast.Inspect(bc.Decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && call == nil {
			call = c
		}
		return true
	})
	if call == nil {
		t.Fatal("no call in bumpCounter")
	}
	sum, args := set.ResolveCall(pkg.TypesInfo, call)
	if sum == nil || sum.Node != nodeByName(t, g, "a.bump") {
		t.Fatalf("ResolveCall resolved to %+v, want a.bump", sum)
	}
	if len(args) != 1 || sum.ArgIndex(0) != 0 {
		t.Errorf("args = %v, ArgIndex(0) = %d", args, sum.ArgIndex(0))
	}
}
