package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The repository's directive grammar. Directives are machine-readable
// comments of the form
//
//	//rtseed:<name> [reason]
//
// with no space after //, mirroring //go: directives. Placement rules:
//
//   - //rtseed:noalloc goes in the doc comment of a function declaration
//     (or on the line immediately above it) and marks the function for the
//     noalloc analyzer.
//   - //rtseed:nondeterministic-ok <reason> waives a determinism finding on
//     its own line, on the line below it, or — in a function's doc comment —
//     for the whole function. The reason is mandatory.
//   - //rtseed:alloc-ok <reason> waives a noalloc finding on its own line or
//     the line below it. The reason is mandatory; there is deliberately no
//     function-scope form, since waiving a whole annotated function would
//     contradict the annotation.
//   - //rtseed:handle-ok <reason> waives an eventhandle finding at a use
//     site, or — on a struct field or package-level variable declaration —
//     blesses that location as a checked long-term holder of engine.Event
//     handles. The reason is mandatory.
//   - //rtseed:kernelctx goes in the doc comment of a function declaration
//     (or on the line immediately above it, or immediately above a function
//     literal) and marks the body as kernel-context code: it may only be
//     reached from other kernelctx code or from a kernelctx-entry.
//   - //rtseed:kernelctx-entry <reason> marks a function as a blessed
//     transition from plain code into kernel context (the event-loop pump,
//     quiescent setup, serialized simulated-thread helpers). The reason is
//     mandatory.
//   - //rtseed:partial-ok <reason> waives an exhaustive finding on a switch
//     statement that deliberately handles a subset of an enum's values. The
//     reason is mandatory.
//   - //rtseed:units-ok <reason> waives a timeunits finding — a mixed-unit
//     arithmetic expression, comparison, or conversion between the tick and
//     nanosecond domains outside the declared helpers. The reason is
//     mandatory.
//   - //rtseed:bodystep-ok <reason> waives a bodystep finding — a
//     continuation-protocol violation in or reachable from a kernel.Body
//     Step method. The reason is mandatory.
//   - //rtseed:shared-ok <reason> waives an isoshare finding — shared
//     mutable state written from a parallel worker closure, or a fan-out
//     result merge whose iteration order is not the canonical index order.
//     The reason is mandatory.
const (
	DirNoalloc          = "noalloc"
	DirNondeterministic = "nondeterministic-ok"
	DirAllocOK          = "alloc-ok"
	DirHandleOK         = "handle-ok"
	DirKernelCtx        = "kernelctx"
	DirKernelCtxEntry   = "kernelctx-entry"
	DirPartialOK        = "partial-ok"
	DirUnitsOK          = "units-ok"
	DirBodyStepOK       = "bodystep-ok"
	DirSharedOK         = "shared-ok"
)

// reasonRequired records which directives must carry a justification.
var reasonRequired = map[string]bool{
	DirNoalloc:          false,
	DirNondeterministic: true,
	DirAllocOK:          true,
	DirHandleOK:         true,
	DirKernelCtx:        false,
	DirKernelCtxEntry:   true,
	DirPartialOK:        true,
	DirUnitsOK:          true,
	DirBodyStepOK:       true,
	DirSharedOK:         true,
}

// KnownDirectives lists every directive name the grammar accepts, in
// documentation order.
var KnownDirectives = []string{
	DirNoalloc, DirNondeterministic, DirAllocOK, DirHandleOK,
	DirKernelCtx, DirKernelCtxEntry, DirPartialOK, DirUnitsOK, DirBodyStepOK,
	DirSharedOK,
}

// A Directive is one parsed //rtseed: comment.
type Directive struct {
	Name   string
	Reason string
	Pos    token.Position
}

// Directives indexes every //rtseed: comment of a package by file and line,
// plus the malformed ones as ready-to-report diagnostics.
type Directives struct {
	byLine map[string]map[int][]Directive
	// Problems holds malformed directives (unknown name, missing reason)
	// as diagnostics the driver reports alongside analyzer findings.
	Problems []Diagnostic
}

const directivePrefix = "//rtseed:"

// ParseDirectives scans the comments of the given files. The files must have
// been parsed with parser.ParseComments.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{byLine: map[string]map[int][]Directive{}}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d.add(fset.Position(c.Pos()), strings.TrimPrefix(c.Text, directivePrefix))
			}
		}
	}
	return d
}

func (d *Directives) add(pos token.Position, text string) {
	name, reason, _ := strings.Cut(text, " ")
	reason = strings.TrimSpace(reason)
	needReason, known := reasonRequired[name]
	switch {
	case !known:
		d.problem(pos, "unknown directive //rtseed:%s (known: %s)",
			name, strings.Join(KnownDirectives, ", "))
		return
	case needReason && reason == "":
		d.problem(pos, "//rtseed:%s needs a reason: //rtseed:%s <why this is safe>", name, name)
		return
	}
	byLine := d.byLine[pos.Filename]
	if byLine == nil {
		byLine = map[int][]Directive{}
		d.byLine[pos.Filename] = byLine
	}
	byLine[pos.Line] = append(byLine[pos.Line], Directive{Name: name, Reason: reason, Pos: pos})
}

func (d *Directives) problem(pos token.Position, format string, args ...any) {
	d.Problems = append(d.Problems, Diagnostic{
		Analyzer: "directives",
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// at returns the first directive of the given name on the given line, or nil.
func (d *Directives) at(filename string, line int, name string) *Directive {
	for i, dir := range d.byLine[filename][line] {
		if dir.Name == name {
			return &d.byLine[filename][line][i]
		}
	}
	return nil
}

// All returns every well-formed directive of the package, sorted by file,
// line, and declaration order within the line. The pointers are stable: the
// same *Directive is returned by at/forDecl/ForLit lookups, so audit passes
// can key usage maps on them.
func (d *Directives) All() []*Directive {
	var out []*Directive
	for _, byLine := range d.byLine {
		for _, dirs := range byLine {
			for i := range dirs {
				out = append(out, &dirs[i])
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// ForLit returns the directive of the given name attached to a function
// literal: on the literal's first line or on the line immediately above it.
func (d *Directives) ForLit(fset *token.FileSet, lit *ast.FuncLit, name string) *Directive {
	pos := fset.Position(lit.Pos())
	if dir := d.at(pos.Filename, pos.Line, name); dir != nil {
		return dir
	}
	return d.at(pos.Filename, pos.Line-1, name)
}

// ForDecl returns the directive of the given name attached to a function
// declaration: in its doc comment, or on the line immediately above the
// declaration (covering directives separated from the doc by a blank line
// or placed without any doc text).
func (d *Directives) ForDecl(fset *token.FileSet, decl *ast.FuncDecl, name string) *Directive {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			pos := fset.Position(c.Pos())
			if dir := d.at(pos.Filename, pos.Line, name); dir != nil {
				return dir
			}
		}
	}
	pos := fset.Position(decl.Pos())
	return d.at(pos.Filename, pos.Line-1, name)
}
