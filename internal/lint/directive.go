package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The repository's directive grammar. Directives are machine-readable
// comments of the form
//
//	//rtseed:<name> [reason]
//
// with no space after //, mirroring //go: directives. Placement rules:
//
//   - //rtseed:noalloc goes in the doc comment of a function declaration
//     (or on the line immediately above it) and marks the function for the
//     noalloc analyzer.
//   - //rtseed:nondeterministic-ok <reason> waives a determinism finding on
//     its own line, on the line below it, or — in a function's doc comment —
//     for the whole function. The reason is mandatory.
//   - //rtseed:alloc-ok <reason> waives a noalloc finding on its own line or
//     the line below it. The reason is mandatory; there is deliberately no
//     function-scope form, since waiving a whole annotated function would
//     contradict the annotation.
//   - //rtseed:handle-ok <reason> waives an eventhandle finding at a use
//     site, or — on a struct field or package-level variable declaration —
//     blesses that location as a checked long-term holder of engine.Event
//     handles. The reason is mandatory.
const (
	DirNoalloc          = "noalloc"
	DirNondeterministic = "nondeterministic-ok"
	DirAllocOK          = "alloc-ok"
	DirHandleOK         = "handle-ok"
)

// reasonRequired records which directives must carry a justification.
var reasonRequired = map[string]bool{
	DirNoalloc:          false,
	DirNondeterministic: true,
	DirAllocOK:          true,
	DirHandleOK:         true,
}

// A Directive is one parsed //rtseed: comment.
type Directive struct {
	Name   string
	Reason string
	Pos    token.Position
}

// Directives indexes every //rtseed: comment of a package by file and line,
// plus the malformed ones as ready-to-report diagnostics.
type Directives struct {
	byLine map[string]map[int][]Directive
	// Problems holds malformed directives (unknown name, missing reason)
	// as diagnostics the driver reports alongside analyzer findings.
	Problems []Diagnostic
}

const directivePrefix = "//rtseed:"

// ParseDirectives scans the comments of the given files. The files must have
// been parsed with parser.ParseComments.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{byLine: map[string]map[int][]Directive{}}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d.add(fset.Position(c.Pos()), strings.TrimPrefix(c.Text, directivePrefix))
			}
		}
	}
	return d
}

func (d *Directives) add(pos token.Position, text string) {
	name, reason, _ := strings.Cut(text, " ")
	reason = strings.TrimSpace(reason)
	needReason, known := reasonRequired[name]
	switch {
	case !known:
		d.problem(pos, "unknown directive //rtseed:%s (known: %s, %s, %s, %s)",
			name, DirNoalloc, DirNondeterministic, DirAllocOK, DirHandleOK)
		return
	case needReason && reason == "":
		d.problem(pos, "//rtseed:%s needs a reason: //rtseed:%s <why this is safe>", name, name)
		return
	}
	byLine := d.byLine[pos.Filename]
	if byLine == nil {
		byLine = map[int][]Directive{}
		d.byLine[pos.Filename] = byLine
	}
	byLine[pos.Line] = append(byLine[pos.Line], Directive{Name: name, Reason: reason, Pos: pos})
}

func (d *Directives) problem(pos token.Position, format string, args ...any) {
	d.Problems = append(d.Problems, Diagnostic{
		Analyzer: "directives",
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// at returns the first directive of the given name on the given line, or nil.
func (d *Directives) at(filename string, line int, name string) *Directive {
	for i, dir := range d.byLine[filename][line] {
		if dir.Name == name {
			return &d.byLine[filename][line][i]
		}
	}
	return nil
}

// forDecl returns the directive of the given name attached to a function
// declaration: in its doc comment, or on the line immediately above the
// declaration (covering directives separated from the doc by a blank line
// or placed without any doc text).
func (d *Directives) forDecl(fset *token.FileSet, decl *ast.FuncDecl, name string) *Directive {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			pos := fset.Position(c.Pos())
			if dir := d.at(pos.Filename, pos.Line, name); dir != nil {
				return dir
			}
		}
	}
	pos := fset.Position(decl.Pos())
	return d.at(pos.Filename, pos.Line-1, name)
}
