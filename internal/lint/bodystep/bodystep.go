// Package bodystep implements the continuation-protocol analyzer for
// kernel.Body implementations.
//
// The continuation executor hands each Body.Step a *kernel.TCB and a
// kernel.Resume that are valid only for the duration of that one Step call:
// the TCB is the thread's live kernel view and the Resume is a stack value
// describing the previous action. Step returns exactly one action (a
// kernel.Next built by an action constructor), and must never fall back to
// the blocking TCB API — a blocking call from inside the kernel's dispatch
// would re-enter the event loop. The analyzer enforces three rules over
// every continuation function (any function or literal whose results
// include kernel.Next, outside the kernel package itself):
//
//   - Retention: the step's *kernel.TCB and kernel.Resume must not outlive
//     the call. A taint pass over the function's CFG seeds every TCB- and
//     Resume-typed variable, propagates through locals, struct fields, and
//     composite literals, and flags stores to package variables, stores
//     through reference-like parameters or captured variables, channel
//     sends, goroutine hand-offs, and escaping closures that capture one.
//   - Exactly one action: every return path of a function returning exactly
//     one kernel.Next must yield a constructed action. A may-zero dataflow
//     pass tracks zero Next values (kernel.Next{}, bare var declarations)
//     to the returns that can observe them — the kernel panics on a zero
//     Next, so this turns a runtime crash into a vet finding. Functions
//     returning (kernel.Next, bool) are exempt: that is the StepOptional
//     protocol, where done=true legitimizes an unexecuted zero Next.
//   - No blocking calls: from every continuation the analyzer walks the
//     call graph over Static, Defer, and Interface edges and flags any
//     reachable call to a blocking *kernel.TCB method (everything except
//     the read-only Thread/Now/HWThread/AlarmMasked/AlarmPending). Go,
//     Ref, and Dynamic edges are not traversed: a goroutine hand-off is
//     already a retention finding, and the conservative tiers would drag
//     in the goroutine-form bodies that block by design.
//
// Findings are waived with //rtseed:bodystep-ok <reason>, audited for
// staleness by the waiverdrift analyzer like every other waiver.
package bodystep

import (
	"go/ast"
	"go/token"
	"go/types"

	"rtseed/internal/lint"
	"rtseed/internal/lint/callgraph"
	"rtseed/internal/lint/dataflow"
)

// Analyzer is the continuation-protocol checker.
var Analyzer = &lint.Analyzer{
	Name: "bodystep",
	Doc: "check the kernel.Body continuation protocol\n\n" +
		"In every continuation function (one whose results include kernel.Next):\n" +
		"the step's *kernel.TCB and kernel.Resume must not be stored where they\n" +
		"outlive the call, every return path must yield a constructed action\n" +
		"(never the zero kernel.Next), and no blocking *kernel.TCB method may be\n" +
		"reachable over the call graph. Waive with //rtseed:bodystep-ok <reason>.",
	RunModule: run,
}

const kernelPath = "rtseed/internal/kernel"

// allowedTCB are the read-only *kernel.TCB methods a continuation may call
// freely. Everything else on the TCB suspends the simulated thread and is
// expressed as a returned action instead; new TCB methods default to
// blocked until listed here.
var allowedTCB = map[string]bool{
	"Thread": true, "Now": true, "HWThread": true,
	"AlarmMasked": true, "AlarmPending": true,
}

func run(mp *lint.ModulePass) error {
	for _, pkg := range mp.Pkgs {
		if pkg.ImportPath == kernelPath {
			continue // the kernel implements the protocol; clients follow it
		}
		pass := mp.PackagePass(pkg)
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				checkFunc(pass, decl, declSig(pass, decl), decl.Body)
				// Function literals have their own control flow; each is
				// analyzed independently (captured TCB/Resume variables are
				// re-seeded from the literal's body).
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						sig, _ := pass.TypesInfo().Types[lit].Type.(*types.Signature)
						checkFunc(pass, decl, sig, lit.Body)
					}
					return true
				})
			}
		}
	}
	checkBlocking(mp, callgraph.Shared(mp))
	return nil
}

// declSig resolves a declaration's signature, nil when type checking failed.
func declSig(pass *lint.Pass, decl *ast.FuncDecl) *types.Signature {
	fn, _ := pass.TypesInfo().Defs[decl.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// resultsHaveNext reports whether any result of sig is kernel.Next — the
// signature-level definition of a continuation function.
func resultsHaveNext(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isNext(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// checkFunc applies the per-function rules (retention, exactly-one-action)
// to one continuation body.
func checkFunc(pass *lint.Pass, decl *ast.FuncDecl, sig *types.Signature, body *ast.BlockStmt) {
	if !resultsHaveNext(sig) {
		return
	}
	checkRetention(pass, decl, sig, body)
	if sig.Results().Len() == 1 {
		checkZeroNext(pass, decl, sig, body)
	}
}

// namedKernelType reports whether t is the named kernel type of that name.
func namedKernelType(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == kernelPath
}

func isNext(t types.Type) bool { return namedKernelType(t, "Next") }

// handleDesc names t when it is one of the per-step handle types the
// retention rule protects, or "" otherwise.
func handleDesc(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok && namedKernelType(p.Elem(), "TCB") {
		return "step's *kernel.TCB"
	}
	if namedKernelType(t, "TCB") {
		return "step's *kernel.TCB"
	}
	if namedKernelType(t, "Resume") {
		return "step's kernel.Resume"
	}
	return ""
}

// taint records which handle a value is (or contains) and where it entered.
type taint struct {
	what string
	pos  token.Pos
}

// retention is the taint checker for the per-step handles.
type retention struct {
	pass   *lint.Pass
	decl   *ast.FuncDecl // enclosing declaration, for function-scope waivers
	report bool
	seen   map[token.Pos]bool

	// handles are every TCB/Resume-typed variable the body mentions — a
	// value of one of those types inside a continuation IS the step's
	// handle, wherever it came from, so seeding is type-based rather than
	// parameter-based (this also catches handles captured from an enclosing
	// continuation). paramObjs are reference-like parameters and receivers:
	// a store through one escapes to the caller. fnPos/fnEnd bound the
	// function; stores through objects declared outside it escape too.
	handles   map[types.Object]taint
	paramObjs map[types.Object]bool
	fnPos     token.Pos
	fnEnd     token.Pos
}

func checkRetention(pass *lint.Pass, decl *ast.FuncDecl, sig *types.Signature, body *ast.BlockStmt) {
	info := pass.TypesInfo()
	ck := &retention{
		pass:      pass,
		decl:      decl,
		handles:   map[types.Object]taint{},
		paramObjs: map[types.Object]bool{},
		fnPos:     body.Pos(),
		fnEnd:     body.End(),
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.ObjectOf(id).(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if what := handleDesc(obj.Type()); what != "" {
			ck.handles[obj] = taint{what: what, pos: obj.Pos()}
		}
		return true
	})
	bindRef := func(v *types.Var) {
		if v != nil && referenceLike(v.Type()) {
			ck.paramObjs[v] = true
		}
	}
	bindRef(sig.Recv())
	for i := 0; i < sig.Params().Len(); i++ {
		bindRef(sig.Params().At(i))
	}
	if len(ck.handles) == 0 {
		return
	}

	cfg := dataflow.BuildCFG(body)
	prob := dataflow.Problem[dataflow.State[taint]]{
		Entry: func() dataflow.State[taint] {
			s := dataflow.State[taint]{}
			for obj, t := range ck.handles {
				s[dataflow.Key{Obj: obj}] = t
			}
			return s
		},
		Copy: func(s dataflow.State[taint]) dataflow.State[taint] { return s.Copy() },
		Join: func(dst, src dataflow.State[taint]) bool { return dst.Merge(src) },
		Node: func(n ast.Node, s dataflow.State[taint]) { ck.transfer(n, s) },
	}
	in := dataflow.Forward(cfg, prob)
	reportCk := *ck
	reportCk.report = true
	reportCk.seen = map[token.Pos]bool{}
	reportProb := prob
	reportProb.Node = func(n ast.Node, s dataflow.State[taint]) { reportCk.transfer(n, s) }
	for _, b := range cfg.Blocks {
		state, ok := in[b]
		if !ok {
			continue
		}
		dataflow.Replay(b, state, reportProb, func(ast.Node, dataflow.State[taint]) {})
	}
}

// referenceLike reports whether a store through a value of this type is
// visible to the caller: pointers, maps, slices, channels, interfaces.
func referenceLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

func (c *retention) info() *types.Info { return c.pass.TypesInfo() }

func (c *retention) transfer(n ast.Node, s dataflow.State[taint]) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		dataflow.ForEachAssign(n, func(lhs, rhs ast.Expr) { c.assign(lhs, rhs, s) })
	case *ast.DeclStmt:
		dataflow.ForEachAssign(n, func(lhs, rhs ast.Expr) { c.assign(lhs, rhs, s) })
	case *ast.SendStmt:
		if t, ok := c.eval(n.Value, s); ok {
			c.flag(n.Value.Pos(), t, "is sent on a channel")
		}
	case *ast.GoStmt:
		if t, ok := c.eval(n.Call.Fun, s); ok {
			c.flag(n.Call.Fun.Pos(), t, "is handed to a new goroutine")
		}
		for _, arg := range n.Call.Args {
			if t, ok := c.eval(arg, s); ok {
				c.flag(arg.Pos(), t, "is handed to a new goroutine")
			}
		}
	}
	// Passing a handle to an ordinary call is the normal helper pattern,
	// returning one hands it back within the same step, and a defer runs
	// before the returned action executes — none of those are sinks.
}

// assign applies one lhs = rhs binding: escaping stores of a handle are
// sinks, keyable locations carry the handle taint forward.
func (c *retention) assign(lhs, rhs ast.Expr, s dataflow.State[taint]) {
	info := c.info()
	if rhs == nil {
		return // bare declaration: handle-typed objects are already seeded
	}
	t, tainted := c.eval(rhs, s)
	if tainted && c.escapes(lhs) {
		c.flag(lhs.Pos(), t, "is stored in "+exprString(lhs)+", which outlives the step")
	}
	if tainted {
		s.Set(info, lhs, t)
	} else {
		s.Clear(info, lhs)
	}
}

// eval decides whether an expression is (or contains) one of the step's
// handles. Unlike value taint, identity does not survive a field read —
// r.Completed is a plain bool — so there is no prefix fallback; instead an
// aggregate is tainted when any key at or below it is.
func (c *retention) eval(e ast.Expr, s dataflow.State[taint]) (taint, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.eval(e.X, s)
	case *ast.StarExpr:
		return c.eval(e.X, s)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.eval(e.X, s)
		}
	case *ast.Ident, *ast.SelectorExpr:
		if k, ok := dataflow.KeyOf(c.info(), e); ok {
			return lookupAt(s, k)
		}
	case *ast.IndexExpr:
		return c.eval(e.X, s) // an element read of a tainted container
	case *ast.SliceExpr:
		return c.eval(e.X, s)
	case *ast.TypeAssertExpr:
		return c.eval(e.X, s)
	case *ast.KeyValueExpr:
		return c.eval(e.Value, s)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if t, ok := c.eval(el, s); ok {
				return t, true
			}
		}
	case *ast.FuncLit:
		// A closure is tainted when it captures a handle; where it then
		// flows decides whether that capture escapes the step.
		info := c.info()
		var found taint
		ok := false
		ast.Inspect(e.Body, func(n ast.Node) bool {
			id, isIdent := n.(*ast.Ident)
			if !isIdent || ok {
				return !ok
			}
			if t, captured := c.handles[info.ObjectOf(id)]; captured {
				found = taint{what: "closure capturing the " + t.what, pos: e.Pos()}
				ok = true
			}
			return true
		})
		return found, ok
	}
	return taint{}, false
}

// lookupAt finds a taint at k or on any key below it (a struct holding a
// tainted field is itself a retention vehicle).
func lookupAt(s dataflow.State[taint], k dataflow.Key) (taint, bool) {
	if t, ok := s[k]; ok {
		return t, true
	}
	for other, t := range s {
		if other.Obj == k.Obj && len(other.Path) > len(k.Path) &&
			other.Path[:len(k.Path)] == k.Path && other.Path[len(k.Path)] == '.' {
			return t, true
		}
	}
	return taint{}, false
}

// escapes reports whether a store to lhs outlives the step: package
// variables, and fields or elements reached through reference-like
// parameters, receivers, or captured variables. A plain local (including a
// named result — returning a handle to the caller stays within the step)
// does not.
func (c *retention) escapes(lhs ast.Expr) bool {
	obj := rootObj(c.info(), lhs)
	if obj == nil {
		return false
	}
	if obj.Parent() == c.pass.Pkg.Types.Scope() {
		return true // package-level variable
	}
	if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
		return false // a plain local copy stays within the step
	}
	if c.paramObjs[obj] {
		return true // store through a reference-like parameter or receiver
	}
	// Captured from an enclosing function (or otherwise non-local).
	return obj.Pos() < c.fnPos || obj.Pos() > c.fnEnd
}

func (c *retention) flag(pos token.Pos, t taint, how string) {
	if !c.report || c.seen[pos] {
		return
	}
	c.seen[pos] = true
	if c.pass.WaivedIn(c.decl, pos, lint.DirBodyStepOK) {
		return
	}
	c.pass.Reportf(pos, "the %s %s; the kernel owns it only for the duration of one Step call (//rtseed:bodystep-ok <reason> to waive)",
		t.what, how)
}

// rootObj walks selector/index/star/slice chains to the base identifier's
// object, or nil when the base is not a named variable.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return rootObj(info, e.X)
	case *ast.StarExpr:
		return rootObj(info, e.X)
	case *ast.UnaryExpr:
		return rootObj(info, e.X)
	case *ast.SelectorExpr:
		return rootObj(info, e.X)
	case *ast.IndexExpr:
		return rootObj(info, e.X)
	case *ast.SliceExpr:
		return rootObj(info, e.X)
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if _, ok := obj.(*types.Var); !ok {
			return nil
		}
		return obj
	}
	return nil
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "an escaping location"
}

// zeroNext is the may-zero checker: a key is present in the state exactly
// when that location may hold the zero kernel.Next, so the union join makes
// "zero on any path" reach the return.
type zeroNext struct {
	pass      *lint.Pass
	decl      *ast.FuncDecl
	report    bool
	seen      map[token.Pos]bool
	resultObj types.Object // the named single result, when there is one
}

func checkZeroNext(pass *lint.Pass, decl *ast.FuncDecl, sig *types.Signature, body *ast.BlockStmt) {
	ck := &zeroNext{pass: pass, decl: decl}
	if res := sig.Results().At(0); res.Name() != "" {
		ck.resultObj = res
	}
	cfg := dataflow.BuildCFG(body)
	prob := dataflow.Problem[dataflow.State[bool]]{
		Entry: func() dataflow.State[bool] {
			s := dataflow.State[bool]{}
			if ck.resultObj != nil {
				s[dataflow.Key{Obj: ck.resultObj}] = true // zero until assigned
			}
			return s
		},
		Copy: func(s dataflow.State[bool]) dataflow.State[bool] { return s.Copy() },
		Join: func(dst, src dataflow.State[bool]) bool { return dst.Merge(src) },
		Node: func(n ast.Node, s dataflow.State[bool]) { ck.transfer(n, s) },
	}
	in := dataflow.Forward(cfg, prob)
	reportCk := *ck
	reportCk.report = true
	reportCk.seen = map[token.Pos]bool{}
	reportProb := prob
	reportProb.Node = func(n ast.Node, s dataflow.State[bool]) { reportCk.transfer(n, s) }
	for _, b := range cfg.Blocks {
		state, ok := in[b]
		if !ok {
			continue
		}
		dataflow.Replay(b, state, reportProb, func(ast.Node, dataflow.State[bool]) {})
	}
}

func (c *zeroNext) transfer(n ast.Node, s dataflow.State[bool]) {
	info := c.pass.TypesInfo()
	switch n := n.(type) {
	case *ast.AssignStmt, *ast.DeclStmt:
		dataflow.ForEachAssign(n, func(lhs, rhs ast.Expr) {
			if c.maybeZero(lhs, rhs, s) {
				s.Set(info, lhs, true)
			} else {
				s.Clear(info, lhs)
			}
		})
	case *ast.ReturnStmt:
		switch {
		case len(n.Results) == 1:
			if c.evalZero(n.Results[0], s) {
				c.flag(n.Results[0].Pos())
			}
		case len(n.Results) == 0 && c.resultObj != nil:
			if _, zero := s[dataflow.Key{Obj: c.resultObj}]; zero {
				c.flag(n.Pos())
			}
		}
	}
}

// maybeZero decides whether the assignment lhs = rhs can leave lhs holding
// the zero kernel.Next. A nil rhs is a bare declaration, zero when the type
// is Next.
func (c *zeroNext) maybeZero(lhs, rhs ast.Expr, s dataflow.State[bool]) bool {
	info := c.pass.TypesInfo()
	if rhs == nil {
		return isNext(info.TypeOf(lhs))
	}
	return c.evalZero(rhs, s)
}

// evalZero reports whether an expression may evaluate to the zero
// kernel.Next: the empty composite literal, or a location a zero value
// reached. Calls count as constructed — the callee is checked on its own.
func (c *zeroNext) evalZero(e ast.Expr, s dataflow.State[bool]) bool {
	info := c.pass.TypesInfo()
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.evalZero(e.X, s)
	case *ast.CompositeLit:
		return isNext(info.TypeOf(e)) && len(e.Elts) == 0
	case *ast.Ident, *ast.SelectorExpr:
		zero, ok := s.Get(info, e)
		return ok && zero
	}
	return false
}

func (c *zeroNext) flag(pos token.Pos) {
	if !c.report || c.seen[pos] {
		return
	}
	c.seen[pos] = true
	if c.pass.WaivedIn(c.decl, pos, lint.DirBodyStepOK) {
		return
	}
	c.pass.Reportf(pos, "this path may return the zero kernel.Next, which the kernel rejects; every path through a continuation returns exactly one action constructor (kernel.Compute, ..., kernel.Done) (//rtseed:bodystep-ok <reason> to waive)")
}

// checkBlocking walks the call graph from every continuation function over
// the direct tiers and flags reachable blocking *kernel.TCB method calls.
func checkBlocking(mp *lint.ModulePass, g *callgraph.Graph) {
	scanned := map[*callgraph.Node]bool{}
	seen := map[token.Pos]bool{}
	for _, root := range g.Nodes {
		if root.Pkg.ImportPath == kernelPath || !continuationNode(root) {
			continue
		}
		visited := map[*callgraph.Node]bool{root: true}
		queue := []*callgraph.Node{root}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			scanNode(mp, n, root, scanned, seen)
			for _, e := range n.Out {
				//rtseed:partial-ok Go is a retention finding, Ref/Dynamic over-approximate into goroutine-form code (see package doc)
				switch e.Kind {
				case callgraph.Static, callgraph.Defer, callgraph.Interface:
					if !visited[e.Callee] {
						visited[e.Callee] = true
						queue = append(queue, e.Callee)
					}
				}
			}
		}
	}
}

// continuationNode reports whether a call-graph node's body is a
// continuation function.
func continuationNode(n *callgraph.Node) bool {
	if n.Func != nil {
		sig, _ := n.Func.Type().(*types.Signature)
		return resultsHaveNext(sig)
	}
	sig, _ := n.Pkg.TypesInfo.Types[n.Lit].Type.(*types.Signature)
	return resultsHaveNext(sig)
}

// scanNode flags the blocking *kernel.TCB method calls in one reachable
// body. Nested literals are scanned in place: they may only run through a
// function value, but they were written inside continuation code.
func scanNode(mp *lint.ModulePass, n, root *callgraph.Node, scanned map[*callgraph.Node]bool, seen map[token.Pos]bool) {
	if scanned[n] || n.Pkg.ImportPath == kernelPath {
		return
	}
	scanned[n] = true
	var body *ast.BlockStmt
	if n.Decl != nil {
		body = n.Decl.Body
	} else {
		body = n.Lit.Body
	}
	if body == nil {
		return
	}
	pass := mp.PackagePass(n.Pkg)
	decl := enclosingDecl(n)
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || seen[call.Pos()] {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil || allowedTCB[fn.Name()] {
			return true
		}
		if handleDesc(sig.Recv().Type()) != "step's *kernel.TCB" {
			return true
		}
		seen[call.Pos()] = true
		if pass.WaivedIn(decl, call.Pos(), lint.DirBodyStepOK) {
			return true
		}
		pass.Reportf(call.Pos(), "(*kernel.TCB).%s blocks the simulated thread and must not be reached from a continuation; return the kernel.%s action instead (reached from %s) (//rtseed:bodystep-ok <reason> to waive)",
			fn.Name(), fn.Name(), root.Name())
		return true
	})
}

// enclosingDecl resolves the function declaration lexically containing a
// node's body, for function-scope waivers; nil for a top-level literal.
func enclosingDecl(n *callgraph.Node) *ast.FuncDecl {
	for n != nil {
		if n.Decl != nil {
			return n.Decl
		}
		n = n.Parent
	}
	return nil
}
