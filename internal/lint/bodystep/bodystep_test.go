package bodystep_test

import (
	"testing"

	"rtseed/internal/lint/analysistest"
	"rtseed/internal/lint/bodystep"
)

func TestBodyStep(t *testing.T) {
	analysistest.Run(t, bodystep.Analyzer, "../testdata/src/bodystep")
}
