// Package detflow implements taint-based determinism checking: the dataflow
// successor to the determinism analyzer's value rules.
//
// The syntactic determinism analyzer flags every wall-clock read in the
// simulation packages, which forces waivers onto code whose clock values
// never escape (busy-wait loops, local latency probes). This analyzer flags
// a nondeterministic value only when it actually reaches a sink — when the
// run's output stops being a pure function of its seed:
//
//   - sources: wall-clock reads (time.Now/Since/Until), the process-global
//     math/rand source, environment reads (os.Getenv and friends), and the
//     iteration order of a map range;
//   - propagation: assignments, arithmetic, composite literals, calls with
//     tainted arguments or receivers — the CFG + worklist solver from
//     internal/lint/dataflow carries taint through locals and struct
//     fields, so laundering is visible; calls the call graph resolves use
//     the callee's function summary (internal/lint/summary) instead of the
//     conservative any-argument rule, so taint crossing function frames —
//     a time.Now() laundered through a helper's return value, an argument
//     a callee stores escapingly — is tracked too, and the finding names
//     the call path it travelled;
//   - sinks: returned values, stores that outlive the call (package
//     variables, named results, fields reached through pointer parameters
//     or captured variables), channel sends, arguments to
//     rtseed/internal/trace calls, and arguments handed to a callee whose
//     summary stores them beyond the call.
//
// Two deliberate imprecisions keep the signal usable: map-iteration-order
// taint does not survive binary arithmetic (order-insensitive reductions —
// sums, min/max, counts — are the common benign pattern), and a call into
// package sort or slices clears map-order taint from its argument, because
// sorting re-establishes a deterministic order. Findings are waived with
// //rtseed:nondeterministic-ok <reason>, the same directive the syntactic
// analyzer consumes — one escape hatch per contract, not per checker.
package detflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rtseed/internal/lint"
	"rtseed/internal/lint/callgraph"
	"rtseed/internal/lint/dataflow"
	"rtseed/internal/lint/determinism"
	"rtseed/internal/lint/summary"
)

// Analyzer is the taint-based determinism checker. It is a module analyzer
// so it can consult whole-module function summaries; the packages it
// reports on are the same determinism scope the syntactic analyzer uses.
var Analyzer = &lint.Analyzer{
	Name: "detflow",
	Doc: "flag nondeterministic values that reach results, traces, or escaping stores\n\n" +
		"Taint-tracks wall-clock reads, global math/rand, env reads, and map\n" +
		"iteration order through each function's CFG and, via whole-module\n" +
		"function summaries, across call frames; a finding fires only when the\n" +
		"tainted value is returned, stored where it outlives the call, sent on\n" +
		"a channel, or emitted to the trace. Waive with\n" +
		"//rtseed:nondeterministic-ok <reason>.",
	RunModule: run,
}

// Taint kinds, shared with the summary tier (one source table for both).
const (
	kindWallClock = summary.KindWallClock
	kindRand      = summary.KindRand
	kindEnv       = summary.KindEnv
	kindMapOrder  = "map-iteration-ordered"
)

const tracePkg = "rtseed/internal/trace"

// inScope reports whether detflow reports on importPath: the shared
// determinism scope, plus fixture packages so the analyzer is testable.
func inScope(importPath string) bool {
	return determinism.InScope(importPath) || strings.HasPrefix(importPath, "rtseed/fixture/")
}

// taint records where a nondeterministic value came from.
type taint struct {
	kind string    // one of the kind* constants
	what string    // source description, e.g. "time.Now"
	pos  token.Pos // the source expression's position
	// entry and origin are set when the taint arrived through a summarized
	// callee's return value: entry is that callee and origin the summary
	// record, so flag can reconstruct the call path for the message.
	entry  *callgraph.Node
	origin summary.Origin
}

func run(mp *lint.ModulePass) error {
	sums := summary.Shared(mp)
	for _, pkg := range mp.Pkgs {
		if !inScope(pkg.ImportPath) {
			continue
		}
		runPkg(mp.PackagePass(pkg), sums)
	}
	return nil
}

func runPkg(pass *lint.Pass, sums *summary.Set) {
	for _, file := range pass.Pkg.Syntax {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			analyzeFunc(pass, sums, decl, decl.Recv, decl.Type, decl.Body)
			// Function literals have their own control flow; analyze each
			// independently. Captured variables count as escaping roots but
			// carry no taint in (taint entering through a call is the
			// summary tier's business).
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyzeFunc(pass, sums, decl, nil, lit.Type, lit.Body)
				}
				return true
			})
		}
	}
}

// checker evaluates expressions against a taint state, optionally reporting
// findings (only the post-solve replay reports; solver passes run silent).
type checker struct {
	pass   *lint.Pass
	sums   *summary.Set
	decl   *ast.FuncDecl // enclosing declaration, for function-scope waivers
	report bool
	seen   map[token.Pos]bool

	// paramObjs are reference-like parameters and receivers: a store through
	// one escapes to the caller. resultObjs are named results: any store
	// escapes. fnPos/fnEnd bound the function; objects declared outside it
	// are captured or global, and stores through them escape too.
	paramObjs  map[types.Object]bool
	resultObjs map[types.Object]bool
	fnPos      token.Pos
	fnEnd      token.Pos
}

func analyzeFunc(pass *lint.Pass, sums *summary.Set, decl *ast.FuncDecl, recv *ast.FieldList, fnType *ast.FuncType, body *ast.BlockStmt) {
	ck := &checker{
		pass:       pass,
		sums:       sums,
		decl:       decl,
		paramObjs:  map[types.Object]bool{},
		resultObjs: map[types.Object]bool{},
		fnPos:      fnType.Pos(),
		fnEnd:      body.End(),
	}
	info := pass.TypesInfo()
	bind := func(fl *ast.FieldList, into map[types.Object]bool, refOnly bool) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if refOnly && !referenceLike(obj.Type()) {
					continue
				}
				into[obj] = true
			}
		}
	}
	bind(recv, ck.paramObjs, true)
	bind(fnType.Params, ck.paramObjs, true)
	bind(fnType.Results, ck.resultObjs, false)

	cfg := dataflow.BuildCFG(body)
	prob := dataflow.Problem[dataflow.State[taint]]{
		Entry: func() dataflow.State[taint] { return dataflow.State[taint]{} },
		Copy:  func(s dataflow.State[taint]) dataflow.State[taint] { return s.Copy() },
		Join: func(dst, src dataflow.State[taint]) bool {
			return dst.Merge(src) // may-analysis: union, any witness wins
		},
		Node: func(n ast.Node, s dataflow.State[taint]) { ck.transfer(n, s) },
	}
	in := dataflow.Forward(cfg, prob)
	reportCk := *ck
	reportCk.report = true
	reportCk.seen = map[token.Pos]bool{}
	reportProb := prob
	reportProb.Node = func(n ast.Node, s dataflow.State[taint]) { reportCk.transfer(n, s) }
	for _, b := range cfg.Blocks {
		state, ok := in[b]
		if !ok {
			continue
		}
		dataflow.Replay(b, state, reportProb, func(ast.Node, dataflow.State[taint]) {})
	}
}

// referenceLike reports whether a store through a value of this type is
// visible to the caller: pointers, maps, slices, channels, interfaces.
func referenceLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

func (c *checker) info() *types.Info { return c.pass.TypesInfo() }

// transfer applies one node's effect to the state, checking sinks along the
// way when report is set.
func (c *checker) transfer(n ast.Node, s dataflow.State[taint]) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			// x op= y folds values; map-order taint does not survive the
			// arithmetic (see the package doc), other kinds do.
			syn := &ast.BinaryExpr{X: n.Lhs[0], OpPos: n.TokPos, Op: token.ADD, Y: n.Rhs[0]}
			c.assign(n.Lhs[0], syn, s)
			return
		}
		dataflow.ForEachAssign(n, func(lhs, rhs ast.Expr) { c.assign(lhs, rhs, s) })
	case *ast.DeclStmt:
		dataflow.ForEachAssign(n, func(lhs, rhs ast.Expr) { c.assign(lhs, rhs, s) })
	case *ast.RangeStmt:
		c.rangeStmt(n, s)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if t, ok := c.eval(r, s); ok {
				c.flag(r.Pos(), t, "is returned to the caller")
			}
		}
	case *ast.SendStmt:
		c.eval(n.Chan, s)
		if t, ok := c.eval(n.Value, s); ok {
			c.flag(n.Value.Pos(), t, "is sent on a channel")
		}
	case *ast.ExprStmt:
		c.stmtCall(n.X, s)
	case *ast.GoStmt:
		c.stmtCall(n.Call, s)
	case *ast.DeferStmt:
		c.stmtCall(n.Call, s)
	case *ast.IncDecStmt:
		// x++ keeps x's taint.
	case ast.Expr:
		// Control expressions attached by the CFG builder (conditions,
		// switch tags): sources evaluated here stay local unless assigned.
		c.eval(n, s)
	}
}

// rangeStmt handles `for k, v := range x`: a map range taints its iteration
// variables with map order; ranging over an already-tainted container
// propagates that taint instead.
func (c *checker) rangeStmt(n *ast.RangeStmt, s dataflow.State[taint]) {
	info := c.info()
	var t taint
	tainted := false
	if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			t = taint{kind: kindMapOrder, what: "iteration over " + exprString(n.X), pos: n.Pos()}
			tainted = true
		}
	}
	if !tainted {
		t, tainted = c.eval(n.X, s)
	}
	for _, v := range []ast.Expr{n.Key, n.Value} {
		if v == nil {
			continue
		}
		if tainted {
			s.Set(info, v, t)
		} else {
			s.Clear(info, v)
		}
	}
}

// assign applies one lhs = rhs binding: escaping stores are sinks, keyable
// locations carry taint forward.
func (c *checker) assign(lhs, rhs ast.Expr, s dataflow.State[taint]) {
	info := c.info()
	if rhs == nil {
		s.Clear(info, lhs)
		return
	}
	t, tainted := c.eval(rhs, s)
	if tainted && c.escapes(lhs) {
		c.flag(lhs.Pos(), t, "is stored in "+exprString(lhs)+", which outlives this call")
	}
	if _, keyable := dataflow.KeyOf(info, rhs); keyable {
		s.Assign(info, lhs, rhs)
		return
	}
	if tainted {
		s.Set(info, lhs, t)
	} else {
		s.Clear(info, lhs)
	}
}

// escapes reports whether a store to lhs is visible outside this function
// call: package variables, named results, and fields or elements reached
// through reference-like parameters or captured variables.
func (c *checker) escapes(lhs ast.Expr) bool {
	obj := rootObj(c.info(), lhs)
	if obj == nil {
		return false
	}
	if obj.Parent() == c.pass.Pkg.Types.Scope() {
		return true // package-level variable
	}
	if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
		return c.resultObjs[obj] // a plain local copy stays local
	}
	if c.paramObjs[obj] || c.resultObjs[obj] {
		return true // store through a reference-like parameter
	}
	// Captured from an enclosing function (or otherwise non-local).
	return obj.Pos() < c.fnPos || obj.Pos() > c.fnEnd
}

// rootObj walks selector/index/star/slice chains to the base identifier's
// object, or nil when the base is not a named variable.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return rootObj(info, e.X)
	case *ast.StarExpr:
		return rootObj(info, e.X)
	case *ast.UnaryExpr:
		return rootObj(info, e.X)
	case *ast.SelectorExpr:
		return rootObj(info, e.X)
	case *ast.IndexExpr:
		return rootObj(info, e.X)
	case *ast.SliceExpr:
		return rootObj(info, e.X)
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if _, ok := obj.(*types.Var); !ok {
			return nil
		}
		return obj
	}
	return nil
}

// stmtCall handles a statement-position call: sort/slices calls sanitize
// map-order taint, everything else evaluates normally (trace sinks fire
// inside eval).
func (c *checker) stmtCall(x ast.Expr, s dataflow.State[taint]) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		c.eval(x, s)
		return
	}
	if fn := c.pass.CalleeFunc(call); fn != nil && fn.Pkg() != nil {
		if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
			for _, arg := range call.Args {
				clearMapOrder(c.info(), s, arg)
			}
			return
		}
	}
	c.eval(call, s)
}

// clearMapOrder removes map-order taint from every key rooted at arg's
// object: sorting re-establishes a deterministic order.
func clearMapOrder(info *types.Info, s dataflow.State[taint], arg ast.Expr) {
	k, ok := dataflow.KeyOf(info, arg)
	if !ok {
		return
	}
	for key, t := range s {
		if key.Obj == k.Obj && t.kind == kindMapOrder {
			delete(s, key)
		}
	}
}

// eval computes the taint of an expression, firing trace-emission sinks on
// any call it walks through.
func (c *checker) eval(e ast.Expr, s dataflow.State[taint]) (taint, bool) {
	if e == nil {
		return taint{}, false
	}
	info := c.info()
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.eval(e.X, s)

	case *ast.Ident:
		return s.Get(info, e)

	case *ast.SelectorExpr:
		if t, ok := s.Get(info, e); ok {
			return t, true
		}
		return c.eval(e.X, s)

	case *ast.CallExpr:
		return c.call(e, s)

	case *ast.BinaryExpr:
		// Map-order taint does not survive arithmetic or comparison:
		// order-insensitive reductions (sums, min/max, counts) are the
		// common benign pattern. Other kinds propagate.
		if t, ok := c.eval(e.X, s); ok && t.kind != kindMapOrder {
			c.eval(e.Y, s)
			return t, true
		}
		if t, ok := c.eval(e.Y, s); ok && t.kind != kindMapOrder {
			return t, true
		}
		return taint{}, false

	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return taint{}, false // channel receive: contents unknown
		}
		return c.eval(e.X, s)

	case *ast.StarExpr:
		return c.eval(e.X, s)

	case *ast.IndexExpr:
		c.eval(e.Index, s)
		return c.eval(e.X, s)

	case *ast.SliceExpr:
		return c.eval(e.X, s)

	case *ast.CompositeLit:
		var found taint
		ok := false
		for _, el := range e.Elts {
			if kv, isKV := el.(*ast.KeyValueExpr); isKV {
				el = kv.Value
			}
			if t, tainted := c.eval(el, s); tainted && !ok {
				found, ok = t, true
			}
		}
		return found, ok

	case *ast.KeyValueExpr:
		return c.eval(e.Value, s)

	case *ast.TypeAssertExpr:
		return c.eval(e.X, s)

	case *ast.FuncLit:
		return taint{}, false // analyzed separately
	}
	return taint{}, false
}

// call evaluates a call expression: source recognition, the trace-emission
// sink, then summary-based propagation for callees the call graph resolves,
// with the conservative rule (any tainted argument or receiver taints the
// result) as the fallback for calls it cannot.
func (c *checker) call(e *ast.CallExpr, s dataflow.State[taint]) (taint, bool) {
	info := c.info()
	if kind, what, ok := summary.Source(info, e); ok {
		for _, a := range e.Args {
			c.eval(a, s)
		}
		return taint{kind: kind, what: what, pos: e.Pos()}, true
	}
	if fn := c.pass.CalleeFunc(e); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == tracePkg {
		for _, arg := range e.Args {
			if t, ok := c.eval(arg, s); ok {
				c.flag(arg.Pos(), t, "is emitted to the trace via "+fn.Name())
			}
		}
	}

	if c.sums != nil {
		if callee, args := c.sums.ResolveCall(info, e); callee != nil {
			return c.summaryCall(callee, args, s)
		}
	}

	// Conservative propagation: the receiver or any argument being tainted
	// taints the result (method calls on tainted values, append, helpers).
	var found taint
	ok := false
	if se, isSel := ast.Unparen(e.Fun).(*ast.SelectorExpr); isSel {
		if t, tainted := c.eval(se.X, s); tainted {
			found, ok = t, true
		}
	}
	for _, arg := range e.Args {
		if t, tainted := c.eval(arg, s); tainted && !ok {
			found, ok = t, true
		}
	}
	return found, ok
}

// summaryCall propagates through a resolved callee using its summary: an
// argument the callee stores beyond the call is a sink, the result carries
// the callee's return taint and whatever tainted arguments flow to its
// return value.
func (c *checker) summaryCall(callee *summary.Summary, args []ast.Expr, s dataflow.State[taint]) (taint, bool) {
	albls := make([]taint, len(args))
	aok := make([]bool, len(args))
	for i, a := range args {
		albls[i], aok[i] = c.eval(a, s)
	}
	for i, a := range args {
		if aok[i] && callee.ParamEscapes.Has(callee.ArgIndex(i)) {
			c.flag(a.Pos(), albls[i], "is stored beyond this call by "+callee.Node.Name())
		}
	}
	var out taint
	ok := false
	if len(callee.ReturnTaint) > 0 {
		o := callee.ReturnTaint[0]
		out = taint{kind: o.Kind, what: o.What, pos: o.Pos, entry: callee.Node, origin: o}
		ok = true
	}
	for i := range args {
		if !ok && aok[i] && callee.ReturnFromParam.Has(callee.ArgIndex(i)) {
			out, ok = albls[i], true
		}
	}
	return out, ok
}

func (c *checker) flag(pos token.Pos, t taint, how string) {
	if !c.report || c.seen[pos] {
		return
	}
	c.seen[pos] = true
	if c.pass.WaivedIn(c.decl, pos, lint.DirNondeterministic) {
		return
	}
	line := c.pass.Pkg.Fset.Position(t.pos).Line
	if t.entry != nil {
		path := callgraph.FormatPath(c.sums.TaintPath(t.entry, t.origin))
		c.pass.Reportf(pos, "%s value from %s (line %d, via %s) %s; a run is no longer a pure function of its seed (//rtseed:nondeterministic-ok <reason> to waive)",
			t.kind, t.what, line, path, how)
		return
	}
	c.pass.Reportf(pos, "%s value from %s (line %d) %s; a run is no longer a pure function of its seed (//rtseed:nondeterministic-ok <reason> to waive)",
		t.kind, t.what, line, how)
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "an escaping location"
}
