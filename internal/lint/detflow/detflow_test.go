package detflow_test

import (
	"testing"

	"rtseed/internal/lint/analysistest"
	"rtseed/internal/lint/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, detflow.Analyzer, "../testdata/src/detflow")
}
