package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectives(t *testing.T) {
	fset, files := parseOne(t, `package p

//rtseed:noalloc
func hot() {}

func cold() {
	_ = 1 //rtseed:alloc-ok cold path, runs once at startup
}

//rtseed:nondeterministic-ok wall clock feeds a log line
func logged() {}
`)
	d := ParseDirectives(fset, files)
	if len(d.Problems) != 0 {
		t.Fatalf("unexpected problems: %v", d.Problems)
	}
	if dir := d.at("dir.go", 3, DirNoalloc); dir == nil {
		t.Error("noalloc directive on line 3 not found")
	}
	dir := d.at("dir.go", 7, DirAllocOK)
	if dir == nil {
		t.Fatal("alloc-ok directive on line 7 not found")
	}
	if want := "cold path, runs once at startup"; dir.Reason != want {
		t.Errorf("reason = %q, want %q", dir.Reason, want)
	}
	if d.at("dir.go", 7, DirNoalloc) != nil {
		t.Error("alloc-ok line must not satisfy a noalloc lookup")
	}
}

func TestMalformedDirectives(t *testing.T) {
	fset, files := parseOne(t, `package p

//rtseed:alloc-ok
func missingReason() {}

//rtseed:nope whatever
func unknown() {}

// rtseed:alloc-ok spaced comments are prose, not directives
func prose() {}
`)
	d := ParseDirectives(fset, files)
	if len(d.Problems) != 2 {
		t.Fatalf("got %d problems, want 2: %v", len(d.Problems), d.Problems)
	}
	if !strings.Contains(d.Problems[0].Message, "needs a reason") {
		t.Errorf("problem 0 = %q, want missing-reason", d.Problems[0].Message)
	}
	if !strings.Contains(d.Problems[1].Message, "unknown directive") {
		t.Errorf("problem 1 = %q, want unknown-directive", d.Problems[1].Message)
	}
}

func TestFuncDirectivePlacements(t *testing.T) {
	fset, files := parseOne(t, `package p

// hot is documented.
//
//rtseed:noalloc
func docAttached() {}

//rtseed:noalloc

func blankSeparated() {}

func bare() {}
`)
	d := ParseDirectives(fset, files)
	var decls []*ast.FuncDecl
	for _, decl := range files[0].Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			decls = append(decls, fd)
		}
	}
	if d.ForDecl(fset, decls[0], DirNoalloc) == nil {
		t.Error("doc-attached directive not found")
	}
	if d.ForDecl(fset, decls[1], DirNoalloc) != nil {
		t.Error("a blank line must detach a directive from the declaration below it")
	}
	if d.ForDecl(fset, decls[2], DirNoalloc) != nil {
		t.Error("bare function must not inherit a directive")
	}
}
