package cluster

import (
	"fmt"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/task"
)

// Class buckets clients by the latency profile of their order flow. The
// classes differ in period range and utilization appetite; admission and
// service quality are reported per class.
type Class uint8

const (
	// ClassHFT is high-frequency flow: 5-20ms periods, the heaviest
	// per-client utilization.
	ClassHFT Class = iota
	// ClassAlgo is algorithmic execution: 20-100ms periods.
	ClassAlgo
	// ClassRetail is retail order routing: 100ms-1s periods, light
	// utilization.
	ClassRetail
)

// NumClasses sizes arrays indexed by Class.
const NumClasses = int(ClassRetail) + 1

// Classes lists the client classes in reporting order.
func Classes() []Class { return []Class{ClassHFT, ClassAlgo, ClassRetail} }

// String implements fmt.Stringer with the report labels.
func (c Class) String() string {
	switch c {
	case ClassHFT:
		return "hft"
	case ClassAlgo:
		return "algo"
	case ClassRetail:
		return "retail"
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// periodRange bounds the class's log-uniform period distribution.
func (c Class) periodRange() (lo, hi time.Duration) {
	switch c {
	case ClassHFT:
		return 5 * time.Millisecond, 20 * time.Millisecond
	case ClassAlgo:
		return 20 * time.Millisecond, 100 * time.Millisecond
	case ClassRetail:
		return 100 * time.Millisecond, time.Second
	}
	panic("cluster: invalid class")
}

// utilizationRange bounds the class's total-utilization draw.
func (c Class) utilizationRange() (lo, hi float64) {
	switch c {
	case ClassHFT:
		return 0.08, 0.45
	case ClassAlgo:
		return 0.05, 0.35
	case ClassRetail:
		return 0.02, 0.25
	}
	panic("cluster: invalid class")
}

// NumSymbols is the size of the simulated symbol universe clients trade in;
// SymbolAffinity routes by symbol % Machines.
const NumSymbols = 4096

// Client is one tenant offered to the cluster: a small periodic task set
// (1-3 tasks) in one latency class, trading one symbol.
type Client struct {
	ID     int
	Class  Class
	Symbol uint32
	Set    *task.Set
}

// clientParams are the cheap-to-draw parameters of a client — everything
// the router and the admission watermark need before paying for task-set
// generation.
type clientParams struct {
	class   Class
	symbol  uint32
	n       int
	util    float64
	genSeed uint64
}

// mix64 derives an independent stream seed from (seed, n): SplitMix64's
// output function over the golden-ratio sequence, the same construction
// engine.Rand uses internally.
func mix64(seed, n uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(n+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// drawClient returns client id's parameters under seed. The population is
// 20% HFT, 30% algo, 50% retail.
func drawClient(seed uint64, id int) clientParams {
	rng := engine.NewRand(mix64(seed, uint64(id)))
	var p clientParams
	roll := rng.Float64()
	switch {
	case roll < 0.2:
		p.class = ClassHFT
	case roll < 0.5:
		p.class = ClassAlgo
	default:
		p.class = ClassRetail
	}
	p.symbol = uint32(rng.Intn(NumSymbols))
	p.n = 1 + rng.Intn(3)
	lo, hi := p.class.utilizationRange()
	p.util = lo + rng.Float64()*(hi-lo)
	p.genSeed = rng.Uint64()
	return p
}

// materialize generates the client's task set from its parameters. Task
// names carry the client id ("c12.0"), keeping names unique fleet-wide.
func materialize(p clientParams, id int) (Client, error) {
	lo, hi := p.class.periodRange()
	set, err := task.Generate(task.GenConfig{
		N:                p.n,
		TotalUtilization: p.util,
		MinPeriod:        lo,
		MaxPeriod:        hi,
		Seed:             p.genSeed,
		NamePrefix:       fmt.Sprintf("c%d.", id),
	})
	if err != nil {
		return Client{}, err
	}
	return Client{ID: id, Class: p.class, Symbol: p.symbol, Set: set}, nil
}

// GenerateClient returns client id of seed's deterministic population: the
// same (seed, id) always yields the same client, independent of every other
// configuration knob.
func GenerateClient(seed uint64, id int) (Client, error) {
	return materialize(drawClient(seed, id), id)
}
