package cluster

import (
	"fmt"

	"rtseed/internal/task"
	"rtseed/internal/workload"
)

// Class buckets clients by the latency profile of their order flow. The
// classes differ in period range and utilization appetite; admission and
// service quality are reported per class. Values mirror workload.Class
// one-for-one, so conversion is by value.
type Class uint8

const (
	// ClassHFT is high-frequency flow: 5-20ms periods, the heaviest
	// per-client utilization.
	ClassHFT Class = Class(workload.ClassHFT)
	// ClassAlgo is algorithmic execution: 20-100ms periods.
	ClassAlgo Class = Class(workload.ClassAlgo)
	// ClassRetail is retail order routing: 100ms-1s periods, light
	// utilization.
	ClassRetail Class = Class(workload.ClassRetail)
)

// NumClasses sizes arrays indexed by Class.
const NumClasses = workload.NumClasses

// Classes lists the client classes in reporting order.
func Classes() []Class { return []Class{ClassHFT, ClassAlgo, ClassRetail} }

// String implements fmt.Stringer with the report labels.
func (c Class) String() string { return workload.Class(c).String() }

// NumSymbols is the size of the default simulated symbol universe;
// SymbolAffinity routes by symbol % Machines.
const NumSymbols = workload.DefaultSymbols

// Client is one tenant offered to the cluster: a small periodic task set
// (1-3 tasks in the builtin population) in one latency class, trading one
// symbol.
type Client struct {
	ID     int
	Class  Class
	Symbol uint32
	Set    *task.Set
}

// GenerateClient returns client id of seed's deterministic builtin
// population: the same (seed, id) always yields the same client, independent
// of every other configuration knob. The draw is workload.Builtin's, which
// preserves the population this layer shipped with byte-for-byte.
func GenerateClient(seed uint64, id int) (Client, error) {
	c, err := workload.Materialize(workload.NewBuiltin(seed, id+1).Params(id))
	if err != nil {
		return Client{}, fmt.Errorf("cluster: client %d: %w", id, err)
	}
	return Client{ID: c.ID, Class: Class(c.Class), Symbol: c.Symbol, Set: c.Set}, nil
}
