// Package cluster scales the single-machine RT-Seed simulation to a fleet:
// N simulated trading machines, each owning its own engine, machine model,
// and kernel on a shared virtual clock, executed in parallel across OS
// threads with results that are byte-identical for any worker count.
//
// The layer has two halves. The front end generates a deterministic client
// population (small periodic task sets in three latency classes), routes
// each client to machines in a Policy-defined order, and admits it with the
// analytical P-RMWP response-time test of internal/analysis — run on copies
// whose mandatory and wind-up parts are inflated by OverheadPerPart so the
// kernel's dispatch and timer costs are budgeted up front (see DESIGN.md
// §9). The back end simulates every machine's admitted workload over the
// horizon in epoch steps: machines advance independently between barriers
// and exchange utilization and deadline-miss signals only when every
// machine has reached the barrier, which is what makes the parallel run
// equal to the sequential one.
//
// Determinism argument: admission is sequential and pure (a function of
// Config alone); machines share no mutable state — each sim owns its
// engine, machine RNG, kernel, counters, and trace sink; the epoch executor
// is sweep.Each, whose completion is the barrier; and every cross-machine
// aggregation (signals, results, merged trace summaries) iterates machines
// in index order. No map iteration, wall clock, or worker identity feeds
// any result.
package cluster

import (
	"fmt"
	"math"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
	"rtseed/internal/sweep"
	"rtseed/internal/task"
	"rtseed/internal/workload"
)

// DefaultOverheadPerPart is the admission-time inflation of each mandatory
// and wind-up part. It budgets the kernel costs a job pays per part under
// the default cost model — a dispatch (55µs base), a timer interrupt +
// reprogram (34µs), and the ±3% cost jitter — with headroom for the
// preemptions higher-priority releases inject. The empirical contract is
// the analytical⊆empirical property test: every admitted set must run
// miss-free. Heavier Load conditions scale op costs up and need a larger
// margin.
const DefaultOverheadPerPart = 150 * time.Microsecond

// Config parameterizes one cluster run.
type Config struct {
	// Machines is the fleet size (default 8).
	Machines int
	// Topology is each machine's processor (default machine.CommodityServer).
	// Admission treats each core as one uniprocessor and the simulation pins
	// all of a core's tasks to its first hardware thread, so the per-core
	// response-time analysis is exact; remaining SMT siblings stay free for
	// non-RT work and contribute no SMT cost contention.
	Topology machine.Topology
	// Load is the background load condition on every machine (default
	// machine.NoLoad).
	Load machine.Load
	// Policy orders the machines offered to each client (default FirstFit).
	Policy Policy
	// Source is the offered client population. Nil selects the builtin
	// steady population of Clients clients (workload.NewBuiltin); a compiled
	// spec or a replayed trace plugs in here. When Source is non-nil,
	// Clients is overridden with Source.Len().
	Source workload.Source
	// Clients is the number of offered client task sets (default 10000;
	// ignored when Source is set).
	Clients int
	// Seed makes the client population and every machine's cost jitter a
	// pure function of the configuration.
	Seed uint64
	// Horizon is the simulated duration (default 1s).
	Horizon time.Duration
	// Epoch is the barrier interval at which machines exchange signals
	// (default Horizon/8; clamped to Horizon).
	Epoch time.Duration
	// OverheadPerPart inflates every mandatory and wind-up part by this
	// margin during admission analysis only. Zero selects
	// DefaultOverheadPerPart; negative disables the margin (admission then
	// ignores kernel overheads and admitted sets may miss deadlines).
	OverheadPerPart time.Duration
	// Workers bounds the OS threads simulating machines in parallel
	// (<= 0 selects GOMAXPROCS). Results are identical for any value.
	Workers int
	// TraceDir, when non-empty, writes one file-backed trace per machine to
	// TraceDir/machine-NNN.rtt. The files are byte-identical for any
	// Workers; trace.Merge folds their analyses into one fleet summary.
	TraceDir string
}

func (c *Config) fillDefaults() {
	if c.Machines == 0 {
		c.Machines = 8
	}
	if c.Topology == (machine.Topology{}) {
		c.Topology = machine.CommodityServer()
	}
	if c.Load == 0 {
		c.Load = machine.NoLoad
	}
	if c.Policy == 0 {
		c.Policy = FirstFit
	}
	if c.Source != nil {
		c.Clients = c.Source.Len()
	} else if c.Clients == 0 {
		c.Clients = 10000
	}
	if c.Horizon == 0 {
		c.Horizon = time.Second
	}
	if c.Epoch == 0 {
		c.Epoch = c.Horizon / 8
	}
	if c.Epoch <= 0 || c.Epoch > c.Horizon {
		c.Epoch = c.Horizon
	}
	if c.OverheadPerPart == 0 {
		c.OverheadPerPart = DefaultOverheadPerPart
	}
	if c.OverheadPerPart < 0 {
		c.OverheadPerPart = 0
	}
}

func (c *Config) validate() error {
	if c.Machines < 1 {
		return fmt.Errorf("cluster: need at least one machine, got %d", c.Machines)
	}
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if !c.Load.Valid() {
		return fmt.Errorf("cluster: invalid load %d", c.Load)
	}
	if !c.Policy.Valid() {
		return fmt.Errorf("cluster: invalid policy %d", c.Policy)
	}
	if c.Clients < 0 {
		return fmt.Errorf("cluster: negative client count %d", c.Clients)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("cluster: non-positive horizon %v", c.Horizon)
	}
	return nil
}

// ClassStats aggregates one client class across the fleet: the admission
// funnel (offered → admitted clients, with their task count) and the
// simulated service quality (completed jobs and deadline misses).
type ClassStats struct {
	Offered  int
	Admitted int
	Tasks    int
	Jobs     int
	Misses   int
}

// AdmissionRatio returns admitted/offered clients (0 when none offered).
func (s ClassStats) AdmissionRatio() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Admitted) / float64(s.Offered)
}

// MissRate returns misses/jobs (0 when no jobs completed).
func (s ClassStats) MissRate() float64 {
	if s.Jobs == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Jobs)
}

// MachineResult is one machine's share of a cluster run.
type MachineResult struct {
	Machine int
	// Clients and Tasks count what admission placed on the machine.
	Clients int
	Tasks   int
	// Utilization is the admitted inflated utilization per core, in [0, 1].
	Utilization float64
	// Busy is the mean simulated busy fraction of the machine's RT cores
	// over the whole horizon.
	Busy float64
	// Events is the machine's simulated event count.
	Events uint64
	// Jobs and Misses total the machine's completed jobs and deadline
	// misses.
	Jobs   int
	Misses int
}

// MachineSignal is the per-machine state exchanged at an epoch barrier —
// the feed a future autoscaler would act on (ROADMAP item 1).
type MachineSignal struct {
	Machine int
	// Busy is the machine's RT-core busy fraction within the epoch. It can
	// marginally exceed 1: the kernel credits a burst's busy time at the
	// burst's completion, so a burst straddling the barrier lands entirely
	// in the epoch it finishes in.
	Busy float64
	// Jobs and Misses are cumulative at the barrier.
	Jobs   int
	Misses int
}

// EpochReport is one barrier's fleet-wide view.
type EpochReport struct {
	// End is the barrier's virtual time.
	End time.Duration
	// Jobs and Misses are cumulative across the fleet at the barrier.
	Jobs   int
	Misses int
	// MeanBusy and MaxBusy summarize the machines' in-epoch busy fractions.
	MeanBusy float64
	MaxBusy  float64
	// Signals holds every machine's signal in machine-index order.
	Signals []MachineSignal
}

// WindowStats aggregates one workload rate window across the fleet: the
// admission funnel of the clients arriving inside it and the service quality
// of the jobs released inside it. Only windowed Sources (compiled specs,
// replayed traces) produce entries; the builtin population is unwindowed.
type WindowStats struct {
	Name       string
	Start, End time.Duration
	// Rate is the window's relative arrival-rate multiplier from the spec.
	Rate float64
	// Offered and Admitted count clients whose arrival instant falls in the
	// window.
	Offered  int
	Admitted int
	// Jobs and Misses count jobs released inside the window.
	Jobs   int
	Misses int
}

// MissRate returns misses/jobs (0 when no jobs completed).
func (w WindowStats) MissRate() float64 {
	if w.Jobs == 0 {
		return 0
	}
	return float64(w.Misses) / float64(w.Jobs)
}

// Result is the outcome of a cluster run. The admission half is filled by
// NewPlan; the simulation half by Simulate.
type Result struct {
	// Workload names the client population (Source.Name).
	Workload string
	// Offered, Admitted and AdmittedTasks describe the admission funnel.
	Offered       int
	Admitted      int
	AdmittedTasks int
	// MachinesUsed counts machines with at least one admitted client.
	MachinesUsed int
	// PerClass indexes ClassStats by Class.
	PerClass [NumClasses]ClassStats
	// Windows has one entry per workload rate window, in time order; empty
	// for unwindowed populations.
	Windows []WindowStats
	// Machines has one entry per machine, in index order.
	Machines []MachineResult
	// Epochs has one entry per barrier, in time order.
	Epochs []EpochReport
	// Events, Jobs and Misses total the fleet's simulation.
	Events uint64
	Jobs   int
	Misses int
}

// AdmissionRatio returns admitted/offered clients across all classes.
func (r *Result) AdmissionRatio() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Admitted) / float64(r.Offered)
}

// Plan is an admitted cluster configuration: the placement of every
// admitted client task onto a (machine, core) pair. A Plan is immutable
// once built; Simulate may be called repeatedly (the scaling benchmark
// replays one admission under different worker counts).
type Plan struct {
	cfg      Config
	src      workload.Source
	machines []*machineState
	placed   [][]placedTask // per machine, admission order
	res      Result         // admission half
}

// placedTask is one admitted task bound to a core of its machine.
type placedTask struct {
	t     task.Task
	class Class
	core  int
	// arrival and lifetime carry the owning client's activity interval into
	// the simulation (zero lifetime: active until the horizon).
	arrival  time.Duration
	lifetime time.Duration
}

// Config returns the plan's configuration with defaults resolved.
func (p *Plan) Config() Config { return p.cfg }

// NewPlan generates the client population and runs admission control: each
// client is offered to machines in the Policy's order and placed on the
// first machine whose cores accept its whole (inflated) task set under the
// P-RMWP response-time test.
//
// A utilization watermark makes the post-saturation regime cheap: once a
// client with raw target utilization u has been rejected by every machine,
// any later client with utilization >= u is rejected without generating or
// analyzing its task set. Machines only gain load, so the repeat analysis
// could only fail again for the same set; across different sets the
// watermark is a heuristic — it can only cause extra rejections, never an
// unsound admission, so the analytical⊆empirical guarantee is unaffected.
// This is what lets a million-client sweep complete in seconds: after the
// fleet saturates, each remaining client costs one parameter draw and one
// comparison.
func NewPlan(cfg Config) (*Plan, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Plan{cfg: cfg, src: cfg.Source}
	if p.src == nil {
		p.src = workload.NewBuiltin(cfg.Seed, cfg.Clients)
	}
	p.machines = make([]*machineState, cfg.Machines)
	for i := range p.machines {
		p.machines[i] = newMachineState(cfg.Topology.Cores)
	}
	p.placed = make([][]placedTask, cfg.Machines)
	p.res.Workload = p.src.Name()
	wins := p.src.Windows()
	for _, w := range wins {
		p.res.Windows = append(p.res.Windows, WindowStats{Name: w.Name, Start: w.Start, End: w.End, Rate: w.Rate})
	}

	order := make([]int, 0, cfg.Machines)
	minRejectU := math.Inf(1)
	for id := 0; id < cfg.Clients; id++ {
		params := p.src.Params(id)
		cs := &p.res.PerClass[Class(params.Class)]
		cs.Offered++
		wi := windowIndex(wins, params.Arrival)
		if wi >= 0 {
			p.res.Windows[wi].Offered++
		}
		if params.Util >= minRejectU {
			continue
		}
		client, err := p.src.Materialize(params)
		if err != nil {
			return nil, fmt.Errorf("cluster: client %d: %w", id, err)
		}
		order = p.order(params, order)
		admitted := false
		for _, mi := range order {
			cores, ok := p.machines[mi].admit(client.Set, cfg.OverheadPerPart)
			if !ok {
				continue
			}
			for k, t := range client.Set.Tasks {
				p.placed[mi] = append(p.placed[mi], placedTask{
					t: t, class: Class(params.Class), core: cores[k],
					arrival: params.Arrival, lifetime: params.Lifetime,
				})
			}
			cs.Admitted++
			cs.Tasks += client.Set.Len()
			if wi >= 0 {
				p.res.Windows[wi].Admitted++
			}
			admitted = true
			break
		}
		if !admitted && params.Util < minRejectU {
			minRejectU = params.Util
		}
	}

	p.res.Offered = cfg.Clients
	for class := 0; class < NumClasses; class++ {
		p.res.Admitted += p.res.PerClass[class].Admitted
		p.res.AdmittedTasks += p.res.PerClass[class].Tasks
	}
	p.res.Machines = make([]MachineResult, cfg.Machines)
	for i, m := range p.machines {
		p.res.Machines[i] = MachineResult{
			Machine:     i,
			Clients:     m.clients,
			Tasks:       m.tasks,
			Utilization: m.util / float64(cfg.Topology.Cores),
		}
		if m.clients > 0 {
			p.res.MachinesUsed++
		}
	}
	return p, nil
}

// windowIndex returns the index of the window containing instant at, or -1
// when the population is unwindowed. Instants at or past the last window's
// start (the profile clamps at the horizon) land in the last window.
func windowIndex(wins []workload.ResolvedWindow, at time.Duration) int {
	for i := len(wins) - 1; i >= 0; i-- {
		if at >= wins[i].Start {
			return i
		}
	}
	return len(wins) - 1
}

// order fills buf with machine indexes in the policy's preference order.
// Ties break toward the lower index, so the order — and with it the whole
// placement — is a pure function of the admission history.
func (p *Plan) order(c workload.ClientParams, buf []int) []int {
	buf = buf[:0]
	m := len(p.machines)
	switch p.cfg.Policy {
	case FirstFit:
		for i := 0; i < m; i++ {
			buf = append(buf, i)
		}
	case WorstFit:
		buf = sortedByKey(buf, m, func(i int) float64 { return p.machines[i].util })
	case LeastLoaded:
		buf = sortedByKey(buf, m, func(i int) float64 { return float64(p.machines[i].clients) })
	case SymbolAffinity:
		start := int(c.Symbol) % m
		for i := 0; i < m; i++ {
			buf = append(buf, (start+i)%m)
		}
	}
	return buf
}

// sortedByKey appends 0..n-1 to buf ordered by ascending key, ties by
// index. Insertion sort with a strict comparison is stable and allocates
// nothing beyond buf.
func sortedByKey(buf []int, n int, key func(int) float64) []int {
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && key(buf[j]) < key(buf[j-1]); j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return buf
}

// Simulate runs the planned fleet over the horizon and returns the full
// Result. Machines advance in parallel on up to cfg.Workers OS threads;
// between epoch barriers they share nothing, and every aggregate is
// gathered in machine-index order, so the Result (and any trace files) are
// byte-identical for any worker count.
func (p *Plan) Simulate() (*Result, error) {
	res := p.res
	res.Machines = append([]MachineResult(nil), p.res.Machines...)
	res.Windows = append([]WindowStats(nil), p.res.Windows...)

	// winEnds is the shared read-only window boundary table bodies attribute
	// job releases against.
	winEnds := make([]time.Duration, len(res.Windows))
	for i, w := range res.Windows {
		winEnds[i] = w.End
	}

	sims := make([]*sim, len(p.machines))
	for i := range sims {
		s, err := newSim(i, &p.cfg, p.placed[i], winEnds)
		if err != nil {
			return nil, err
		}
		sims[i] = s
	}

	horizon := engine.At(p.cfg.Horizon)
	for end := engine.Time(0); end < horizon; {
		end = end.Add(p.cfg.Epoch)
		if end > horizon {
			end = horizon
		}
		barrier := end
		if err := sweep.Each(p.cfg.Workers, len(sims), func(i int) error {
			sims[i].runUntil(barrier)
			return nil
		}); err != nil {
			return nil, err
		}
		// The Each call above is the epoch barrier: every machine has
		// reached end. Gather the exchanged signals in index order.
		ep := EpochReport{End: end.Duration(), Signals: make([]MachineSignal, len(sims))}
		for i, s := range sims {
			sig := s.signal(end)
			ep.Signals[i] = sig
			ep.Jobs += sig.Jobs
			ep.Misses += sig.Misses
			ep.MeanBusy += sig.Busy
			if sig.Busy > ep.MaxBusy {
				ep.MaxBusy = sig.Busy
			}
		}
		if len(sims) > 0 {
			ep.MeanBusy /= float64(len(sims))
		}
		res.Epochs = append(res.Epochs, ep)
	}

	for i, s := range sims {
		mr := &res.Machines[i]
		mr.Busy = s.meanBusy()
		mr.Events = s.eng.Steps()
		for class := range s.counters {
			c := s.counters[class]
			mr.Jobs += c.Jobs
			mr.Misses += c.Misses
			res.PerClass[class].Jobs += c.Jobs
			res.PerClass[class].Misses += c.Misses
		}
		for w := range s.winCounts {
			res.Windows[w].Jobs += s.winCounts[w].Jobs
			res.Windows[w].Misses += s.winCounts[w].Misses
		}
		res.Events += mr.Events
		res.Jobs += mr.Jobs
		res.Misses += mr.Misses
		if err := s.finish(); err != nil {
			return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
		}
	}
	return &res, nil
}

// Run is NewPlan followed by Simulate.
func Run(cfg Config) (*Result, error) {
	p, err := NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	return p.Simulate()
}
