package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
	"rtseed/internal/trace"
	"rtseed/internal/workload"
)

// classCount tallies one class's completed jobs and deadline misses on one
// machine. Bodies mutate it from the machine's own event loop; cross-machine
// reads happen only at epoch barriers.
type classCount struct {
	Jobs   int
	Misses int
}

// windowCount tallies one workload window's jobs and misses on one machine.
// Like classCount, bodies mutate it only from the machine's own event loop.
type windowCount struct {
	Jobs   int
	Misses int
}

// sim is one machine's running simulation. Each sim owns every piece of
// mutable state it touches — engine, machine RNG, kernel, counters, trace
// sink — which is what lets machines run on concurrent OS threads without
// sharing anything between barriers.
type sim struct {
	index    int
	eng      *engine.Engine
	kern     *kernel.Kernel
	topo     machine.Topology
	tracer   *trace.Tracer
	file     *os.File
	counters [NumClasses]classCount
	// winCounts has one tally per workload window (empty when unwindowed);
	// bodies attribute each job by its release instant.
	winCounts []windowCount

	prevEnd  engine.Time
	prevBusy time.Duration
}

// newSim builds machine index's simulation: engine, cost model (with a
// per-machine jitter seed derived from cfg.Seed and the index, so the fleet
// is heterogeneous but reproducible), optional file-backed tracer, and one
// pinned continuation thread per placed task. All of a core's tasks run on
// the core's first hardware thread at their RM band priority, matching the
// uniprocessor analysis that admitted them.
func newSim(index int, cfg *Config, placed []placedTask, winEnds []time.Duration) (*sim, error) {
	mach, err := machine.New(cfg.Topology, cfg.Load, machine.DefaultCostModel(),
		workload.Mix64(cfg.Seed, 0x10000+uint64(index)))
	if err != nil {
		return nil, err
	}
	eng := engine.New()
	kern := kernel.New(eng, mach)
	s := &sim{index: index, eng: eng, kern: kern, topo: cfg.Topology}
	if len(winEnds) > 0 {
		s.winCounts = make([]windowCount, len(winEnds))
	}
	if cfg.TraceDir != "" {
		f, err := os.Create(filepath.Join(cfg.TraceDir, TraceFileName(index)))
		if err != nil {
			return nil, err
		}
		s.file = f
		s.tracer = trace.New(trace.Config{CPUs: cfg.Topology.NumHWThreads(), Sink: f})
		kern.SetTrace(s.tracer)
	}

	perCore := make([][]placedTask, cfg.Topology.Cores)
	for _, pt := range placed {
		perCore[pt.core] = append(perCore[pt.core], pt)
	}
	var threads []*kernel.Thread
	for core, pts := range perCore {
		if len(pts) == 0 {
			continue
		}
		tasks := make([]task.Task, len(pts))
		for i, pt := range pts {
			tasks[i] = pt.t
		}
		set, err := task.NewSet(tasks...)
		if err != nil {
			return nil, err
		}
		prios, err := task.RMBandPriorities(set, kernel.MinPriority, kernel.MaxPriority-1)
		if err != nil {
			return nil, err
		}
		cpu := cfg.Topology.HWThreadOf(core, 0)
		for i, pt := range pts {
			th, err := kern.NewBodyThread(kernel.ThreadConfig{
				Name:     pt.t.Name,
				Priority: prios[i],
				CPU:      cpu,
			}, &clusterBody{
				kern:      kern,
				cnt:       &s.counters[pt.class],
				winEnds:   winEnds,
				winCounts: s.winCounts,
				period:    pt.t.Period,
				mandatory: pt.t.Mandatory,
				windup:    pt.t.Windup,
				start:     engine.At(pt.arrival),
				stop:      stopAt(pt.arrival, pt.lifetime),
			})
			if err != nil {
				return nil, err
			}
			threads = append(threads, th)
		}
	}
	for _, th := range threads {
		th.Start()
	}
	return s, nil
}

// stopAt converts a client's activity interval into the instant its tasks
// stop releasing jobs; zero lifetime means active until the horizon, encoded
// as engine.Time zero (no stop).
func stopAt(arrival, lifetime time.Duration) engine.Time {
	if lifetime == 0 {
		return 0
	}
	return engine.At(arrival + lifetime)
}

// TraceFileName is the per-machine trace file name under Config.TraceDir.
func TraceFileName(index int) string {
	return fmt.Sprintf("machine-%03d.rtt", index)
}

// runUntil advances the machine's virtual clock to end. It steps the engine
// directly: kernel.RunUntil would also shut the kernel down, killing the
// periodic threads between epochs.
func (s *sim) runUntil(end engine.Time) { s.eng.RunUntil(end) }

// rtBusy sums the busy time of the machine's RT cores (each core's first
// hardware thread) since time zero.
func (s *sim) rtBusy() time.Duration {
	var busy time.Duration
	now := s.eng.Now().Duration()
	for c := 0; c < s.topo.Cores; c++ {
		f := s.kern.Utilization(s.topo.HWThreadOf(c, 0), 0)
		busy += time.Duration(f * float64(now))
	}
	return busy
}

// signal is the machine's contribution to the epoch barrier ending at end:
// cumulative jobs and misses plus the in-epoch busy fraction of its RT
// cores.
func (s *sim) signal(end engine.Time) MachineSignal {
	sig := MachineSignal{Machine: s.index}
	for i := range s.counters {
		sig.Jobs += s.counters[i].Jobs
		sig.Misses += s.counters[i].Misses
	}
	busy := s.rtBusy()
	if span := end.Sub(s.prevEnd); span > 0 && s.topo.Cores > 0 {
		sig.Busy = float64(busy-s.prevBusy) / (float64(span) * float64(s.topo.Cores))
	}
	s.prevEnd, s.prevBusy = end, busy
	return sig
}

// meanBusy is the RT cores' mean busy fraction over the whole run.
func (s *sim) meanBusy() float64 {
	now := s.eng.Now().Duration()
	if now <= 0 || s.topo.Cores == 0 {
		return 0
	}
	return float64(s.rtBusy()) / (float64(now) * float64(s.topo.Cores))
}

// finish shuts the machine down and flushes its trace file, if any.
func (s *sim) finish() error {
	s.kern.Shutdown()
	if s.tracer == nil {
		return nil
	}
	err := s.tracer.Close(s.kern.ThreadInfos())
	if cerr := s.file.Close(); err == nil {
		err = cerr
	}
	return err
}

// clusterPC is the program counter of a client task's continuation body.
type clusterPC uint8

const (
	// cpcRelease: account the finished job (except on the first step) and
	// sleep until the next release.
	cpcRelease clusterPC = iota
	// cpcMandatory: the release sleep returned; run the mandatory part.
	cpcMandatory
	// cpcWindup: the mandatory burst returned; run the wind-up part.
	cpcWindup
)

// clusterBody is the continuation form of one admitted client task: sleep
// to release, compute mandatory, compute wind-up, account the job against
// its implicit deadline (release + period). One value per task, allocated
// once at sim build; Step allocates nothing, so per-machine steady state
// matches the many-task executor's 0 allocs/op.
type clusterBody struct {
	kern *kernel.Kernel
	cnt  *classCount
	// winEnds/winCounts attribute each job to the workload window containing
	// its release; wi is the body's monotone window cursor (releases only
	// move forward in time).
	winEnds   []time.Duration
	winCounts []windowCount
	wi        int
	period    time.Duration
	mandatory time.Duration
	windup    time.Duration
	// start is the first release (the client's arrival); stop, when nonzero,
	// ends the client's job stream (arrival + lifetime).
	start   engine.Time
	stop    engine.Time
	release engine.Time
	job     int
	pc      clusterPC
}

//rtseed:noalloc
//rtseed:kernelctx
func (b *clusterBody) Step(c *kernel.TCB, r kernel.Resume) kernel.Next {
	switch b.pc {
	case cpcRelease:
		if r.First {
			b.release = b.start
		} else {
			b.finishJob(c)
			b.release = b.release.Add(b.period)
			if b.stop != 0 && b.release >= b.stop {
				return kernel.Done()
			}
		}
		b.pc = cpcMandatory
		return kernel.SleepUntil(b.release)
	case cpcMandatory:
		b.emit(c, b.release, trace.KindJobRelease, uint64(b.job))
		b.emit(c, c.Now(), trace.KindMandStart, uint64(b.job))
		b.pc = cpcWindup
		return kernel.Compute(b.mandatory)
	case cpcWindup:
		b.pc = cpcRelease
		return kernel.Compute(b.windup)
	}
	panic("cluster: corrupt client body state")
}

// finishJob accounts the job that just completed its wind-up part against
// the machine's per-class counters and mirrors the verdict into the trace.
//
//rtseed:noalloc
//rtseed:kernelctx
func (b *clusterBody) finishJob(c *kernel.TCB) {
	finish := c.Now()
	deadline := b.release.Add(b.period)
	b.cnt.Jobs++
	missed := trace.MissedDeadline(finish.Duration(), deadline.Duration())
	b.emit(c, finish, trace.KindJobEnd, uint64(b.job))
	if missed {
		b.cnt.Misses++
		b.emit(c, finish, trace.KindDeadlineMiss, trace.PackMiss(b.job, finish.Sub(deadline)))
	} else {
		b.emit(c, finish, trace.KindDeadlineMet, uint64(b.job))
	}
	if len(b.winCounts) > 0 {
		rel := b.release.Duration()
		for b.wi+1 < len(b.winEnds) && rel >= b.winEnds[b.wi] {
			b.wi++
		}
		b.winCounts[b.wi].Jobs++
		if missed {
			b.winCounts[b.wi].Misses++
		}
	}
	b.job++
}

// emit writes one middleware trace record attributed to the calling thread.
//
//rtseed:noalloc
//rtseed:kernelctx
func (b *clusterBody) emit(c *kernel.TCB, at engine.Time, kind trace.Kind, arg uint64) {
	if tr := b.kern.Trace(); tr != nil {
		tr.Emit(at, uint16(c.HWThread()), uint32(c.Thread().ID()), kind, arg)
	}
}
