package cluster

import (
	"runtime"
	"testing"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
)

// benchConfig is the reduced fleet used by the scaling benchmarks: 8
// machines of 8x2 cores, enough admitted clients to keep every machine
// busy, short horizon so one Simulate stays in benchmark range.
func benchConfig() Config {
	return Config{
		Machines: 8,
		Topology: machine.Topology{Cores: 8, ThreadsPerCore: 2},
		Clients:  1500,
		Seed:     17,
		Horizon:  500 * time.Millisecond,
	}
}

// BenchmarkClusterScaling measures the fleet simulation's parallel scaling:
// it reports the wall-clock speedup of a GOMAXPROCS-worker run over a
// one-worker run of the same plan ("speedup-x"; ~1 on a single-CPU host,
// approaching min(workers, machines) on real hardware since machines only
// meet at epoch barriers) and the steady-state cost per simulated event.
func BenchmarkClusterScaling(b *testing.B) {
	plan, err := NewPlan(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)

	plan.cfg.Workers = 1
	seqStart := time.Now()
	if _, err := plan.Simulate(); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(seqStart)
	plan.cfg.Workers = workers
	parStart := time.Now()
	if _, err := plan.Simulate(); err != nil {
		b.Fatal(err)
	}
	par := time.Since(parStart)

	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := plan.Simulate()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	// After the loop: ResetTimer deletes previously reported metrics.
	b.ReportMetric(float64(seq)/float64(par), "speedup-x")
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

// BenchmarkClusterAdmission measures the front end alone: clients offered
// per second through draw → route → incremental P-RMWP admission, at a
// population well past fleet saturation so both the analyzed and the
// watermark-rejected regimes contribute.
func BenchmarkClusterAdmission(b *testing.B) {
	cfg := benchConfig()
	cfg.Clients = 20000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlan(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Clients)*float64(b.N)/b.Elapsed().Seconds(), "clients/sec")
}

// BenchmarkClusterSingleMachine prices the cluster wrapper itself: the same
// single-machine workload run through the epoch-stepped cluster path
// ("cluster") and driven straight to the horizon ("direct"). The acceptance
// bar is the cluster path within 5% of direct ns/event.
func BenchmarkClusterSingleMachine(b *testing.B) {
	cfg := benchConfig()
	cfg.Machines = 1
	plan, err := NewPlan(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cluster", func(b *testing.B) {
		var events uint64
		for i := 0; i < b.N; i++ {
			res, err := plan.Simulate()
			if err != nil {
				b.Fatal(err)
			}
			events += res.Events
		}
		if events > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
		}
	})
	b.Run("direct", func(b *testing.B) {
		var events uint64
		for i := 0; i < b.N; i++ {
			s, err := newSim(0, &plan.cfg, plan.placed[0], nil)
			if err != nil {
				b.Fatal(err)
			}
			s.runUntil(engine.At(plan.cfg.Horizon))
			events += s.eng.Steps()
			if err := s.finish(); err != nil {
				b.Fatal(err)
			}
		}
		if events > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
		}
	})
}
