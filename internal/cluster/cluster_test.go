package cluster

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
	"rtseed/internal/trace"
	"rtseed/internal/workload"
)

func testConfig(workers int) Config {
	return Config{
		Machines: 3,
		Topology: machine.Topology{Cores: 4, ThreadsPerCore: 2},
		Clients:  200,
		Seed:     42,
		Horizon:  400 * time.Millisecond,
		Workers:  workers,
	}
}

// TestSimulateDeterministicAcrossWorkers is the cluster's core guarantee —
// and the executable form of the engine/kernel isolation audit: if any
// package-level mutable state leaked into the per-machine hot path, racing
// worker counts would diverge.
func TestSimulateDeterministicAcrossWorkers(t *testing.T) {
	var ref *Result
	for _, workers := range []int{1, 7, 8} {
		res, err := Run(testConfig(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			if ref.Admitted == 0 || ref.Jobs == 0 {
				t.Fatalf("degenerate reference run: %+v", ref)
			}
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("workers=%d result differs from workers=1", workers)
		}
	}
}

// TestTraceFilesDeterministicAcrossWorkers checks the per-machine trace
// files are byte-identical for any worker count and that trace.Merge agrees
// with the simulation's own counters.
func TestTraceFilesDeterministicAcrossWorkers(t *testing.T) {
	read := func(workers int) (*Result, [][]byte) {
		dir := t.TempDir()
		cfg := testConfig(workers)
		cfg.TraceDir = dir
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var files [][]byte
		for i := 0; i < cfg.Machines; i++ {
			b, err := os.ReadFile(filepath.Join(dir, TraceFileName(i)))
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, b)
		}
		return res, files
	}

	res1, files1 := read(1)
	_, files8 := read(8)
	for i := range files1 {
		if string(files1[i]) != string(files8[i]) {
			t.Errorf("machine %d trace differs between workers=1 and workers=8", i)
		}
	}

	var analyses []*trace.Analysis
	for i, b := range files1 {
		dir := t.TempDir()
		path := filepath.Join(dir, TraceFileName(i))
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		tr, err := trace.ReadFile(path)
		if err != nil {
			t.Fatalf("machine %d: %v", i, err)
		}
		analyses = append(analyses, trace.Analyze(tr))
	}
	merged := trace.Merge(analyses...)
	if merged.Files != len(files1) {
		t.Fatalf("merged %d files, want %d", merged.Files, len(files1))
	}
	if merged.Jobs != res1.Jobs || merged.Misses != res1.Misses {
		t.Errorf("merged trace jobs=%d misses=%d, simulation counted jobs=%d misses=%d",
			merged.Jobs, merged.Misses, res1.Jobs, res1.Misses)
	}
	if merged.Tasks != res1.AdmittedTasks {
		t.Errorf("merged trace saw %d tasks, admission placed %d", merged.Tasks, res1.AdmittedTasks)
	}
	if merged.Lost != 0 {
		t.Errorf("file-backed traces lost %d records", merged.Lost)
	}
}

// TestClusterOfOneMatchesDirectKernel checks the epoch-stepped cluster path
// adds nothing to the simulation itself: one machine advanced in epoch
// slices with barrier bookkeeping must produce exactly the events, jobs,
// and misses of the same kernel driven straight to the horizon.
func TestClusterOfOneMatchesDirectKernel(t *testing.T) {
	cfg := testConfig(1)
	cfg.Machines = 1
	cfg.Epoch = 50 * time.Millisecond
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Simulate()
	if err != nil {
		t.Fatal(err)
	}

	// Direct runner: same placement, same seed-derived machine, one
	// uninterrupted advance to the horizon.
	direct, err := newSim(0, &plan.cfg, plan.placed[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	direct.runUntil(engine.At(cfg.Horizon))
	steps := direct.eng.Steps()
	var jobs, misses int
	for _, c := range direct.counters {
		jobs += c.Jobs
		misses += c.Misses
	}
	if err := direct.finish(); err != nil {
		t.Fatal(err)
	}

	m := res.Machines[0]
	if m.Events != steps || m.Jobs != jobs || m.Misses != misses {
		t.Errorf("cluster-of-1 (events=%d jobs=%d misses=%d) != direct kernel (events=%d jobs=%d misses=%d)",
			m.Events, m.Jobs, m.Misses, steps, jobs, misses)
	}
	if len(res.Epochs) != 8 {
		t.Errorf("got %d epochs, want 8", len(res.Epochs))
	}
}

// TestClusterParallelSpeedup requires the epoch executor to actually scale:
// with 8 machines on a >= 4-CPU host, the parallel run must be at least 3x
// faster than workers=1. Hosts with fewer CPUs skip (the determinism tests
// still cover correctness there); BenchmarkClusterScaling reports the
// speedup-x metric on every host.
func TestClusterParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup bound, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	cfg := Config{
		Machines: 8,
		Topology: machine.Topology{Cores: 8, ThreadsPerCore: 2},
		Clients:  4000,
		Seed:     3,
		Horizon:  2 * time.Second,
	}
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wall := func(workers int) time.Duration {
		plan.cfg.Workers = workers
		start := time.Now()
		if _, err := plan.Simulate(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	wall(runtime.NumCPU()) // warm up page cache and scheduler
	seq := wall(1)
	par := wall(8)
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, parallel %v, speedup %.2fx", seq, par, speedup)
	if speedup < 3 {
		t.Errorf("speedup %.2fx < 3x with 8 machines on %d CPUs", speedup, runtime.NumCPU())
	}
}

// TestRoutingPolicies drives order() directly on synthetic machine states.
func TestRoutingPolicies(t *testing.T) {
	p := &Plan{cfg: Config{}, machines: []*machineState{
		{util: 3.0, clients: 1},
		{util: 1.0, clients: 5},
		{util: 2.0, clients: 3},
	}}

	cases := []struct {
		policy Policy
		params workload.ClientParams
		want   []int
	}{
		{FirstFit, workload.ClientParams{}, []int{0, 1, 2}},
		{WorstFit, workload.ClientParams{}, []int{1, 2, 0}},
		{LeastLoaded, workload.ClientParams{}, []int{0, 2, 1}},
		{SymbolAffinity, workload.ClientParams{Symbol: 4}, []int{1, 2, 0}}, // 4 % 3 == 1
		{SymbolAffinity, workload.ClientParams{Symbol: 5}, []int{2, 0, 1}},
	}
	for _, c := range cases {
		p.cfg.Policy = c.policy
		got := p.order(c.params, nil)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%v(symbol=%d): got %v, want %v", c.policy, c.params.Symbol, got, c.want)
		}
	}
}

// TestWorstFitBalances checks the placement policies differ as advertised:
// worst-fit spreads admitted utilization more evenly than first-fit packs.
func TestWorstFitBalances(t *testing.T) {
	spread := func(policy Policy) (used int, maxMin float64) {
		cfg := testConfig(1)
		cfg.Machines = 4
		cfg.Clients = 60
		cfg.Policy = policy
		plan, err := NewPlan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := 2.0, 0.0
		for _, m := range plan.res.Machines {
			if m.Utilization < lo {
				lo = m.Utilization
			}
			if m.Utilization > hi {
				hi = m.Utilization
			}
		}
		return plan.res.MachinesUsed, hi - lo
	}
	ffUsed, ffSpread := spread(FirstFit)
	wfUsed, wfSpread := spread(WorstFit)
	if wfUsed < ffUsed {
		t.Errorf("worst-fit used %d machines, first-fit %d", wfUsed, ffUsed)
	}
	if wfSpread > ffSpread {
		t.Errorf("worst-fit utilization spread %.3f wider than first-fit's %.3f", wfSpread, ffSpread)
	}
}

// TestConfigValidation covers the error paths.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Machines: -1},
		{Policy: Policy(99)},
		{Load: machine.Load(99)},
		{Clients: -5},
		{Horizon: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewPlan(cfg); err == nil {
			t.Errorf("config %d: invalid configuration accepted", i)
		}
	}
}
