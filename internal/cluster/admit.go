package cluster

import (
	"time"

	"rtseed/internal/analysis"
	"rtseed/internal/task"
)

// inflate returns t with the admission overhead budget folded into both
// real-time parts, so the response-time analysis prices the kernel costs
// each part pays (dispatch, timer interrupt, reprogram, jitter).
func inflate(t task.Task, margin time.Duration) task.Task {
	t.Mandatory += margin
	t.Windup += margin
	return t
}

// coreState is one core's admitted task list — inflated copies in
// rate-monotonic order, exactly the list analysis.RMWPFits analyzes.
type coreState struct {
	tasks []task.Task
	util  float64
}

// rmPos returns the RM insertion position for period p: after every
// admitted task with period <= p, so earlier-admitted ties keep their
// higher priority, matching RMBandPriorities' stable tie-break at
// simulation build.
func (c *coreState) rmPos(p time.Duration) int {
	for i, t := range c.tasks {
		if t.Period > p {
			return i
		}
	}
	return len(c.tasks)
}

// tryInsert admits t onto the core if the augmented list passes the
// incremental P-RMWP test, returning the insertion position. scratch is the
// caller's reusable buffer; the (possibly grown) buffer is returned either
// way.
func (c *coreState) tryInsert(t task.Task, scratch []task.Task) (int, []task.Task, bool) {
	if c.util+t.Utilization() > 1 {
		return 0, scratch, false
	}
	pos := c.rmPos(t.Period)
	scratch = scratch[:0]
	scratch = append(scratch, c.tasks[:pos]...)
	scratch = append(scratch, t)
	scratch = append(scratch, c.tasks[pos:]...)
	// Tasks before pos keep their response times (interference only flows
	// down the priority order), so the test restarts at the insertion point.
	if !analysis.RMWPFits(scratch, pos) {
		return 0, scratch, false
	}
	c.tasks = append(c.tasks, task.Task{})
	copy(c.tasks[pos+1:], c.tasks[pos:])
	c.tasks[pos] = t
	c.util += t.Utilization()
	return pos, scratch, true
}

// remove undoes an insert at pos (rollback of a partially placed client).
func (c *coreState) remove(pos int) {
	c.util -= c.tasks[pos].Utilization()
	c.tasks = append(c.tasks[:pos], c.tasks[pos+1:]...)
}

// machineState is one machine's admission-control state: per-core task
// lists plus machine totals the routing policies order by.
type machineState struct {
	cores   []coreState
	util    float64 // sum of admitted inflated utilizations
	clients int
	tasks   int

	scratch  []task.Task // RMWPFits candidate buffer
	placeBuf []placement // current client's placements, for rollback
	coreBuf  []int       // current client's core per task
}

func newMachineState(cores int) *machineState {
	return &machineState{cores: make([]coreState, cores)}
}

// placement records where one task landed, for rollback.
type placement struct{ core, pos int }

// admit places every task of set onto the machine's cores (first-fit over
// cores, each core checked with the exact incremental P-RMWP test on
// inflated copies) or leaves the machine unchanged. On success it returns
// the core index of each task, parallel to set.Tasks; the slice is reused
// by the next call.
func (m *machineState) admit(set *task.Set, margin time.Duration) ([]int, bool) {
	m.placeBuf = m.placeBuf[:0]
	m.coreBuf = m.coreBuf[:0]

	setU := 0.0
	ok := true
	for _, raw := range set.Tasks {
		t := inflate(raw, margin)
		if t.WCET() > t.Period {
			ok = false
			break
		}
		setU += t.Utilization()
	}
	if ok && m.util+setU > float64(len(m.cores)) {
		ok = false
	}
	if ok {
		for _, raw := range set.Tasks {
			t := inflate(raw, margin)
			placed := false
			for ci := range m.cores {
				pos, scratch, fit := m.cores[ci].tryInsert(t, m.scratch)
				m.scratch = scratch
				if fit {
					m.placeBuf = append(m.placeBuf, placement{core: ci, pos: pos})
					m.coreBuf = append(m.coreBuf, ci)
					placed = true
					break
				}
			}
			if !placed {
				ok = false
				break
			}
		}
	}
	if !ok {
		// Roll back in reverse insertion order: each recorded position is
		// valid once every later insert has been removed.
		for i := len(m.placeBuf) - 1; i >= 0; i-- {
			p := m.placeBuf[i]
			m.cores[p.core].remove(p.pos)
		}
		return nil, false
	}
	m.util += setU
	m.clients++
	m.tasks += len(set.Tasks)
	return m.coreBuf, true
}
