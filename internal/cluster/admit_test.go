package cluster

import (
	"reflect"
	"testing"
	"time"

	"rtseed/internal/machine"
	"rtseed/internal/task"
	"rtseed/internal/workload"
)

// TestAnalyticalAdmissionImpliesEmpiricalMissFree is the soundness property
// of the admission controller: every client the inflated P-RMWP analysis
// admits must run miss-free in the simulation. Analytical admission works
// on WCETs inflated by OverheadPerPart; the simulation charges the real
// kernel costs (dispatch, timers, jitter) — the property holds only if the
// margin truly budgets them, so this is the empirical contract for
// DefaultOverheadPerPart.
func TestAnalyticalAdmissionImpliesEmpiricalMissFree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed simulation sweep")
	}
	for _, policy := range Policies() {
		for seed := uint64(1); seed <= 3; seed++ {
			res, err := Run(Config{
				Machines: 2,
				Topology: machine.Topology{Cores: 4, ThreadsPerCore: 2},
				Policy:   policy,
				Clients:  300,
				Seed:     seed,
				Horizon:  time.Second,
			})
			if err != nil {
				t.Fatalf("policy %v seed %d: %v", policy, seed, err)
			}
			if res.Admitted == 0 {
				t.Fatalf("policy %v seed %d: admitted no clients — property vacuous", policy, seed)
			}
			if res.Jobs == 0 {
				t.Fatalf("policy %v seed %d: no jobs completed", policy, seed)
			}
			if res.Misses != 0 {
				t.Errorf("policy %v seed %d: admitted workload missed %d/%d deadlines; OverheadPerPart margin too small",
					policy, seed, res.Misses, res.Jobs)
			}
		}
	}
}

// TestAdmitRollbackLeavesMachineUnchanged drives a machine to rejection and
// checks the failed admission left no partial placement behind.
func TestAdmitRollbackLeavesMachineUnchanged(t *testing.T) {
	m := newMachineState(1)
	big := task.Uniform("a", 2*time.Millisecond, 2*time.Millisecond, 0, 0, 10*time.Millisecond)
	set := task.MustNewSet(big)
	if _, ok := m.admit(set, 0); !ok {
		t.Fatal("first 40%-utilization task should fit an empty core")
	}
	utilBefore, tasksBefore := m.util, len(m.cores[0].tasks)

	// Two tasks that fit individually but not together on the loaded core:
	// the second must roll the first back out.
	over := task.MustNewSet(
		task.Uniform("b.0", 2*time.Millisecond, 2*time.Millisecond, 0, 0, 10*time.Millisecond),
		task.Uniform("b.1", 3*time.Millisecond, 3*time.Millisecond, 0, 0, 10*time.Millisecond),
	)
	if _, ok := m.admit(over, 0); ok {
		t.Fatal("140%-utilization client admitted onto one core")
	}
	if m.util != utilBefore || len(m.cores[0].tasks) != tasksBefore || m.clients != 1 {
		t.Fatalf("rollback left residue: util %v->%v, tasks %d->%d, clients %d",
			utilBefore, m.util, tasksBefore, len(m.cores[0].tasks), m.clients)
	}
}

// TestAdmitInflationRejectsTightSets checks the margin is actually applied:
// a task set that fits exactly without overhead must be rejected once each
// part carries the inflation.
func TestAdmitInflationRejectsTightSets(t *testing.T) {
	full := task.MustNewSet(task.Uniform("a", 5*time.Millisecond, 5*time.Millisecond, 0, 0, 10*time.Millisecond))
	if _, ok := newMachineState(1).admit(full, 0); !ok {
		t.Fatal("exactly-full core rejected with zero margin")
	}
	if _, ok := newMachineState(1).admit(full, DefaultOverheadPerPart); ok {
		t.Fatal("exactly-full core admitted despite inflation margin")
	}
}

// TestMillionClientAdmission checks the admission front end handles an
// offered population three orders of magnitude beyond fleet capacity: the
// utilization watermark must make post-saturation rejections O(1), so a
// million-client sweep stays interactive (the acceptance bar is minutes;
// in practice this runs in well under a second).
func TestMillionClientAdmission(t *testing.T) {
	if testing.Short() {
		t.Skip("million-client sweep")
	}
	p, err := NewPlan(Config{Machines: 8, Clients: 1_000_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if p.res.Offered != 1_000_000 {
		t.Fatalf("offered %d clients, want 1000000", p.res.Offered)
	}
	if p.res.Admitted == 0 || p.res.MachinesUsed != 8 {
		t.Fatalf("admitted %d clients on %d machines; fleet should saturate", p.res.Admitted, p.res.MachinesUsed)
	}
	for _, m := range p.res.Machines {
		if m.Utilization > 1 {
			t.Errorf("machine %d admitted %.3f utilization per core", m.Machine, m.Utilization)
		}
	}
}

// TestGenerateClientDeterministic checks the population is a pure function
// of (seed, id) and classes stay within their declared ranges.
func TestGenerateClientDeterministic(t *testing.T) {
	for id := 0; id < 50; id++ {
		a, err := GenerateClient(7, id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateClient(7, id)
		if err != nil {
			t.Fatal(err)
		}
		if a.Class != b.Class || a.Symbol != b.Symbol || a.Set.Len() != b.Set.Len() {
			t.Fatalf("client %d differs between identical draws", id)
		}
		for i := range a.Set.Tasks {
			if !reflect.DeepEqual(a.Set.Tasks[i], b.Set.Tasks[i]) {
				t.Fatalf("client %d task %d differs", id, i)
			}
		}
		lo, hi := workload.ClassPeriodRange(workload.Class(a.Class))
		for _, tk := range a.Set.Tasks {
			if tk.Period < lo || tk.Period > hi {
				t.Fatalf("client %d (%v): period %v outside [%v, %v]", id, a.Class, tk.Period, lo, hi)
			}
		}
		if n := a.Set.Len(); n < 1 || n > 3 {
			t.Fatalf("client %d: %d tasks, want 1-3", id, n)
		}
	}
}
