package cluster

import "fmt"

// Policy is the order machines are offered a client. Placement is always
// admission-checked — a policy only chooses who gets to say yes first — so
// every policy preserves the analytical admission guarantee and differs
// only in packing density and isolation.
type Policy uint8

const (
	// FirstFit offers machines in index order: packs the fleet from the
	// front, minimizing machines used.
	FirstFit Policy = iota + 1
	// WorstFit offers the least-utilized machine first: balances admitted
	// utilization across the fleet.
	WorstFit
	// LeastLoaded offers the machine with the fewest admitted clients
	// first: balances tenant count rather than load.
	LeastLoaded
	// SymbolAffinity starts at hash(symbol) mod machines and probes
	// linearly: keeps one symbol's order flow on one machine so
	// cross-machine signals about a symbol stay local.
	SymbolAffinity
)

// Policies lists the routing policies in definition order.
func Policies() []Policy {
	return []Policy{FirstFit, WorstFit, LeastLoaded, SymbolAffinity}
}

// String implements fmt.Stringer with the CLI names.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	case LeastLoaded:
		return "least-loaded"
	case SymbolAffinity:
		return "affinity"
	}
	return fmt.Sprintf("policy%d", uint8(p))
}

// Valid reports whether p is a defined policy.
func (p Policy) Valid() bool { return p >= FirstFit && p <= SymbolAffinity }

// ParsePolicy maps a CLI name to its Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown policy %q (want first-fit, worst-fit, least-loaded, or affinity)", s)
}
