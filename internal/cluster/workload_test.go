package cluster

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"rtseed/internal/machine"
	"rtseed/internal/workload"
)

// specConfig is a small bursty-spec cluster configuration shared by the
// workload integration tests.
func specConfig(t *testing.T, workers int) Config {
	t.Helper()
	spec, ok := workload.BuiltinSpec("flash-crash")
	if !ok {
		t.Fatal("flash-crash builtin missing")
	}
	src, err := workload.Compile(spec, workload.CompileConfig{
		Clients: 600, Seed: 11, Horizon: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Machines: 2,
		Topology: machine.Topology{Cores: 4, ThreadsPerCore: 2},
		Source:   src,
		Seed:     11,
		Horizon:  200 * time.Millisecond,
		Workers:  workers,
	}
}

// TestSpecSourceDeterministicAcrossWorkers extends the byte-identity
// contract to windowed spec populations: the full Result — window tallies
// included — must not depend on the worker count.
func TestSpecSourceDeterministicAcrossWorkers(t *testing.T) {
	var ref *Result
	for _, workers := range []int{1, 3, 8} {
		res, err := Run(specConfig(t, workers))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("result differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestSpecSourceWindowTallies checks the per-window funnel and service
// tallies are consistent with the totals and that the crash window's offered
// spike dwarfs the calm window's.
func TestSpecSourceWindowTallies(t *testing.T) {
	res, err := Run(specConfig(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "flash-crash" {
		t.Errorf("workload name %q", res.Workload)
	}
	if len(res.Windows) != 4 {
		t.Fatalf("%d windows, want 4", len(res.Windows))
	}
	offered, admitted, jobs, misses := 0, 0, 0, 0
	for _, w := range res.Windows {
		offered += w.Offered
		admitted += w.Admitted
		jobs += w.Jobs
		misses += w.Misses
	}
	if offered != res.Offered || admitted != res.Admitted {
		t.Errorf("window funnel sums %d/%d, want %d/%d", offered, admitted, res.Offered, res.Admitted)
	}
	if jobs != res.Jobs || misses != res.Misses {
		t.Errorf("window service sums %d/%d, want %d/%d", jobs, misses, res.Jobs, res.Misses)
	}
	calm, crash := res.Windows[0], res.Windows[1]
	if crash.Name != "crash" || calm.Name != "calm" {
		t.Fatalf("window order %q, %q", calm.Name, crash.Name)
	}
	// The crash window has 12x the rate over less than half the calm span:
	// its offered arrivals must clearly exceed calm's.
	if crash.Offered <= calm.Offered {
		t.Errorf("crash window offered %d <= calm %d: spike not visible", crash.Offered, calm.Offered)
	}
}

// TestReplayReproducesRun records the spec population to a .rtk trace,
// replays it through a fresh cluster, and requires the full Result —
// admission funnel, per-class and per-window service, epochs — to match the
// generating run exactly.
func TestReplayReproducesRun(t *testing.T) {
	cfg := specConfig(t, 0)
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	src := cfg.Source.(*workload.SpecSource)
	var buf bytes.Buffer
	if err := workload.Write(&buf, src.Trace(100)); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.Source = workload.NewReplay(tr)
	cfg2.Seed = tr.Meta.Seed
	cfg2.Horizon = tr.Meta.Horizon
	got, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != ref.Workload {
		t.Errorf("replay workload %q, want %q", got.Workload, ref.Workload)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("replayed run differs from generating run:\nref: %+v\ngot: %+v", ref, got)
	}
}

// TestLifetimeBoundsJobs checks client lifetimes stop job release: a
// population of short-lived clients must complete far fewer jobs than the
// same population with unlimited lifetimes.
func TestLifetimeBoundsJobs(t *testing.T) {
	mk := func(lifetime workload.Duration) *Result {
		spec := workload.Spec{
			Name: "lifetimes",
			Cohorts: []workload.Cohort{{
				Name:     "hft",
				Class:    workload.ClassHFT,
				Weight:   1,
				Arrival:  workload.Dist{Process: workload.ProcPoisson},
				Tasks:    [2]int{1, 1},
				Util:     [2]float64{0.1, 0.2},
				Period:   [2]workload.Duration{workload.Duration(5 * time.Millisecond), workload.Duration(10 * time.Millisecond)},
				Lifetime: [2]workload.Duration{lifetime, lifetime},
			}},
		}
		src, err := workload.Compile(spec, workload.CompileConfig{
			Clients: 40, Seed: 4, Horizon: 400 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Machines: 1,
			Topology: machine.Topology{Cores: 4, ThreadsPerCore: 1},
			Source:   src,
			Seed:     4,
			Horizon:  400 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unlimited := mk(0)
	short := mk(workload.Duration(20 * time.Millisecond))
	if unlimited.Admitted == 0 || short.Admitted == 0 {
		t.Fatal("admission rejected everything; test config too tight")
	}
	if short.Jobs*2 >= unlimited.Jobs {
		t.Errorf("short lifetimes completed %d jobs vs %d unlimited: lifetime not enforced",
			short.Jobs, unlimited.Jobs)
	}
}

// TestBuiltinPathUnchanged pins the nil-Source default to the builtin
// population: same funnel as an explicit workload.NewBuiltin source and no
// window table.
func TestBuiltinPathUnchanged(t *testing.T) {
	base := Config{
		Machines: 2,
		Topology: machine.Topology{Cores: 4, ThreadsPerCore: 2},
		Clients:  300,
		Seed:     9,
		Horizon:  100 * time.Millisecond,
	}
	def, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if def.Workload != "builtin" {
		t.Errorf("default workload %q", def.Workload)
	}
	if len(def.Windows) != 0 {
		t.Errorf("builtin population has %d windows, want none", len(def.Windows))
	}
	explicit := base
	explicit.Source = workload.NewBuiltin(base.Seed, base.Clients)
	exp, err := Run(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, exp) {
		t.Fatal("nil Source differs from explicit builtin Source")
	}
}
