# Tier-1 verification plus the race detector and a benchmark smoke run,
# in one command: `make ci`.

GO ?= go

.PHONY: ci vet build test test-race bench-smoke bench clean

ci: vet build test test-race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One pass over every benchmark at a single iteration each: catches
# benchmark bit-rot without the cost of a full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Full measurement run (slow): one bench per table/figure of the paper.
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
