# Tier-1 verification plus the race detector, the invariant analyzers, and a
# benchmark smoke run, in one command: `make ci`.

GO ?= go

# Pinned external tool versions. The tools are optional locally (the targets
# skip them when the binary is absent) but CI installs exactly these versions,
# so local and CI runs that do have them agree. Pinned here rather than as
# go.mod tool dependencies because the build must stay offline-capable.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: ci vet lint lint-stats vuln build test test-race bench-smoke bench bench-json bench-trajectory trace-smoke cluster-smoke workload-smoke fuzz-smoke tools clean

ci: vet lint build test test-race bench-smoke trace-smoke cluster-smoke workload-smoke fuzz-smoke vuln

vet:
	$(GO) vet ./...

# lint runs the repository's own invariant analyzers (rtseed-vet) and, when
# installed, staticcheck. rtseed-vet findings fail the build, and so does any
# growth of the waiver population against the committed lint-budget.json —
# lowering a count regenerates the budget in place, so the waiver count only
# ever ratchets down. See DESIGN.md §5 for the invariants and escape hatches.
#
# The rtseed-vet wall time is printed after every run, and CI sets
# LINT_MAX_SECONDS (a deliberately coarse ceiling) so a summary-computation
# blow-up — the interprocedural tier is a whole-module fixpoint — fails the
# build instead of silently eating the lint budget.
lint:
	@start=$$(date +%s); \
	$(GO) run ./cmd/rtseed-vet -budget lint-budget.json ./... || exit $$?; \
	elapsed=$$(($$(date +%s) - start)); \
	echo "rtseed-vet: $${elapsed}s wall"; \
	if [ -n "$(LINT_MAX_SECONDS)" ] && [ "$$elapsed" -gt "$(LINT_MAX_SECONDS)" ]; then \
		echo "rtseed-vet: took $${elapsed}s, ceiling is $(LINT_MAX_SECONDS)s (summary tier blow-up?)"; \
		exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (make tools, or see .github/workflows/ci.yml)"; \
	fi

# lint-stats writes the waiver-directive census — how many of each escape
# hatch the tree carries — to results/VET_STATS.json; CI uploads it so the
# waiver trajectory across PRs is inspectable without checking out the tree.
lint-stats:
	@mkdir -p results
	$(GO) run ./cmd/rtseed-vet -stats ./... > results/VET_STATS.json
	@cat results/VET_STATS.json

# vuln scans dependencies for known vulnerabilities. Advisory only: the scan
# needs the network and the database moves independently of this repository,
# so findings are reported but never fail the build.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "govulncheck reported findings (non-fatal)"; \
	else \
		echo "govulncheck not installed; skipping (make tools, or see .github/workflows/ci.yml)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One pass over every benchmark at a single iteration each: catches
# benchmark bit-rot without the cost of a full measurement run. The second
# line gives the continuation executor's scale case (16384 tasks, release
# mode) a real measured burst so a steady-state allocation regression fails
# CI, not just a crash.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(GO) test -run=NONE -bench='BenchmarkManyTaskKernel/release/n=16384$$' -benchtime=100000x -benchmem .

# Full measurement run (slow): one bench per table/figure of the paper.
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# trace-smoke exercises the tracing pipeline end to end: record a quick
# traced simulation, run the analyzer over the file, and fail unless the
# analysis is non-empty (-check) — the fastest way to catch a broken emit
# path, codec, or analyzer.
trace-smoke:
	@mkdir -p results
	$(GO) run ./cmd/rtseed-repro -quick -o /dev/null -trace results/trace-smoke.rtt
	$(GO) run ./cmd/rtseed-trace -check -misses results/trace-smoke.rtt

# cluster-smoke is the executable form of the cluster layer's determinism
# contract: run the same quick fleet at one worker and at eight and fail on
# any byte of difference between the reports. The artifacts land under
# results/cluster-smoke-* (gitignored).
cluster-smoke:
	@mkdir -p results
	$(GO) run ./cmd/rtseed-cluster -quick -workers 1 -o results/cluster-smoke-w1.txt
	$(GO) run ./cmd/rtseed-cluster -quick -workers 8 -o results/cluster-smoke-w8.txt
	diff results/cluster-smoke-w1.txt results/cluster-smoke-w8.txt
	@echo "cluster-smoke: reports byte-identical across worker counts"

# workload-smoke is the executable form of the workload subsystem's
# determinism contract, end to end through the CLIs: generate the bursty
# flash-crash spec, record its population and ticks to a .rtk trace, run the
# cluster sweep from the spec at one worker and at eight (byte-identical
# reports required), then replay the recorded trace and require the replay
# report to be byte-identical to the generating run. Artifacts land under
# results/workload-smoke-* (gitignored).
workload-smoke:
	@mkdir -p results
	$(GO) run ./cmd/rtseed-workload spec -builtin flash-crash -o results/workload-smoke-spec.json
	$(GO) run ./cmd/rtseed-workload gen -spec results/workload-smoke-spec.json \
		-clients 2000 -seed 11 -horizon 200ms -ticks 2000 -o results/workload-smoke.rtk
	$(GO) run ./cmd/rtseed-workload validate results/workload-smoke.rtk
	$(GO) run ./cmd/rtseed-cluster -machines 4 -margin 0 -clients 2000 -seed 11 -horizon 200ms \
		-spec results/workload-smoke-spec.json -workers 1 -o results/workload-smoke-w1.txt
	$(GO) run ./cmd/rtseed-cluster -machines 4 -margin 0 -clients 2000 -seed 11 -horizon 200ms \
		-spec results/workload-smoke-spec.json -workers 8 -o results/workload-smoke-w8.txt
	diff results/workload-smoke-w1.txt results/workload-smoke-w8.txt
	$(GO) run ./cmd/rtseed-cluster -machines 4 -margin 0 \
		-replay results/workload-smoke.rtk -workers 8 -o results/workload-smoke-replay.txt
	diff results/workload-smoke-w1.txt results/workload-smoke-replay.txt
	@echo "workload-smoke: spec sweep identical across workers; replay reproduces the generating run"

# fuzz-smoke runs each fuzz target for a short, bounded burst: long enough to
# trip a regression in the engine-vs-oracle equivalence or the trace codec
# round-trip, short enough for every CI run. `go test -fuzz` accepts a single
# target per invocation, so each gets its own line.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzEngineVsOracle -fuzztime=30s ./internal/engine
	$(GO) test -run=NONE -fuzz=FuzzTraceCodec -fuzztime=30s ./internal/trace
	$(GO) test -run=NONE -fuzz=FuzzBodyVsGoroutine -fuzztime=30s ./internal/sched
	$(GO) test -run=NONE -fuzz=FuzzCFGBuild -fuzztime=30s ./internal/lint/dataflow
	$(GO) test -run=NONE -fuzz=FuzzWorkloadCodec -fuzztime=30s ./internal/workload

# bench-json runs the scheduling-core benchmarks (engine, kernel hot paths,
# many-task scaling, tracing overhead, cluster fan-out, workload
# generation/replay) and converts the stream into
# results/BENCH_PR$(BENCH_PR).json via rtseed-benchjson, the
# machine-readable perf-trajectory record CI uploads as an artifact. The
# second pass repeats the continuation-executor headline benchmarks 5× so
# the record carries medians, and the -baseline flag embeds the previous
# stack point's medians from results/BENCH_PR$(BENCH_BASE).json next to
# them. Override per stack point: `make bench-json BENCH_PR=10 BENCH_BASE=9`.
BENCH_PR ?= 9
BENCH_BASE ?= 8
bench-json:
	@mkdir -p results
	( $(GO) test -run=NONE \
		-bench='BenchmarkEngine|BenchmarkKernel|BenchmarkManyTaskKernel|BenchmarkTracingOverhead|BenchmarkTraceEmit|BenchmarkCluster|BenchmarkWorkload' \
		-benchmem ./... ; \
	  $(GO) test -run=NONE \
		-bench='BenchmarkKernelEventThroughput$$|BenchmarkManyTaskKernel/(release|compute)/n=1024$$' \
		-benchmem -count=5 . ) \
	| $(GO) run ./cmd/rtseed-benchjson -baseline results/BENCH_PR$(BENCH_BASE).json -o results/BENCH_PR$(BENCH_PR).json
	@echo "wrote results/BENCH_PR$(BENCH_PR).json"

# bench-trajectory folds every committed per-PR benchmark report into one
# longitudinal record, results/BENCH_TRAJECTORY.json: each benchmark's
# ns/op median across the PR stack, oldest point first. Pure file merge —
# no benchmarks run, so it is cheap enough for every CI pass. The
# _BASELINE report is excluded: it is PR 6's before-measurement, not a
# stack point of its own.
bench-trajectory:
	@mkdir -p results
	$(GO) run ./cmd/rtseed-benchjson -trajectory -o results/BENCH_TRAJECTORY.json \
		$(filter-out %_BASELINE.json,$(sort $(wildcard results/BENCH_PR*.json)))
	@echo "wrote results/BENCH_TRAJECTORY.json"

# tools installs the pinned external analyzers (network required).
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

clean:
	$(GO) clean ./...
