// Quickstart: run one parallel-extended imprecise task on the RT-Seed
// middleware over the simulated many-core kernel.
//
// The task mirrors the paper's evaluation setup, scaled down: period 100ms,
// mandatory part 20ms, wind-up part 20ms, and four parallel optional parts
// that would each take 1s — so they always overrun their optional deadline
// and are terminated, while every wind-up part still meets its deadline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"rtseed/internal/analysis"
	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A machine: the Xeon Phi 3120A topology with no background load.
	mach, err := machine.New(machine.XeonPhi3120A(), machine.NoLoad, machine.DefaultCostModel(), 1)
	if err != nil {
		return err
	}
	k := kernel.New(engine.New(), mach)

	// 2. A parallel-extended imprecise task: m=20ms, w=20ms, four optional
	// parts of 1s each, period 100ms.
	tk := task.Uniform("demo", 20*time.Millisecond, 20*time.Millisecond,
		time.Second, 4, 100*time.Millisecond)

	// 3. The optional deadline from the RMWP analysis (here D - w), minus
	// a margin for the scheduling overheads the paper budgets into the
	// wind-up WCET.
	res, err := analysis.RMWP(task.MustNewSet(tk))
	if err != nil {
		return err
	}
	od := res[0].OptionalDeadline - 5*time.Millisecond

	// 4. Hardware-thread assignment for the optional parts (One by One),
	// and the process itself.
	cpus, err := assign.HWThreads(mach.Topology(), assign.OneByOne, tk.NumOptional())
	if err != nil {
		return err
	}
	p, err := core.NewProcess(k, core.Config{
		Task:              tk,
		MandatoryPriority: 90, // RTQ; optional threads get 90-49=41 (NRTQ)
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  od,
		Jobs:              10,
		App: core.App{
			OnWindup: func(job int, progress []float64) {
				fmt.Printf("job %2d: optional progress %.0f%%\n", job, progress[0]*100)
			},
		},
	})
	if err != nil {
		return err
	}

	// 5. Run the simulation and report.
	p.Start()
	k.Run()
	st := p.Stats()
	fmt.Printf("\n%d jobs, %d deadline misses, mean QoS %.2f, %d parts terminated at OD=%v\n",
		st.Jobs, st.DeadlineMisses, st.MeanQoS, st.TerminatedParts, od)
	return nil
}
