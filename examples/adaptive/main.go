// Adaptive: the paper's concluding guidance — "traders should choose an
// appropriate number of parallel optional parts by considering the overhead
// associated with beginning and ending the processes" — as a closed-loop
// controller. A task starts with 57 parallel optional parts under
// CPU-Memory load; the controller bounds the ending overhead at 2ms by
// shedding parts (AIMD), converging to the largest part count the budget
// affords.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const np = 57
	mach, err := machine.New(machine.XeonPhi3120A(), machine.CPUMemoryLoad, machine.DefaultCostModel(), 11)
	if err != nil {
		return err
	}
	k := kernel.New(engine.New(), mach)
	tk := task.Uniform("adaptive", 25*time.Millisecond, 25*time.Millisecond,
		time.Second, np, 100*time.Millisecond)
	cpus, err := assign.HWThreads(mach.Topology(), assign.OneByOne, np)
	if err != nil {
		return err
	}
	var lags []time.Duration
	var active []int
	p, err := core.NewProcess(k, core.Config{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  65 * time.Millisecond,
		Jobs:              25,
		Adaptive:          &core.Adaptive{EndingBudget: 2 * time.Millisecond},
		Probes: core.Probes{OnWindupStart: func(job int, od, start engine.Time) {
			lags = append(lags, start.Sub(od))
		}},
		App: core.App{OnWindup: func(job int, progress []float64) {
			// ActiveParts reflects the NEXT job's count after adaptation.
			active = append(active, len(progress))
		}},
	})
	if err != nil {
		return err
	}
	p.Start()
	k.Run()

	fmt.Println("job  signalled-parts  ending-lag")
	recs := p.Records()
	for i, rec := range recs {
		signalled := 0
		for _, part := range rec.Parts {
			if part.Outcome != task.PartDiscarded {
				signalled++
			}
		}
		fmt.Printf("%3d  %15d  %v\n", i, signalled, lags[i].Round(10*time.Microsecond))
	}
	st := p.Stats()
	fmt.Printf("\nconverged to %d parts; %d deadline misses; budget 2ms\n",
		p.ActiveParts(), st.DeadlineMisses)
	return nil
}
