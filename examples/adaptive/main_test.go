package main

import "testing"

// Smoke test: the example runs end to end without error.
func TestExampleRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
