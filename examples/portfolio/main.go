// Portfolio: three instruments traded concurrently, each as its own
// parallel-extended imprecise task under P-RMWP. The partitioner spreads
// the tasks over processors (worst-fit), each task's optional parts run its
// indicator battery against its own feed, and the wind-up parts trade
// against per-instrument brokers — the multi-task deployment the paper's
// middleware is built for, beyond its single-task evaluation.
//
//	go run ./examples/portfolio
package main

import (
	"fmt"
	"log"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/partition"
	"rtseed/internal/sched"
	"rtseed/internal/task"
	"rtseed/internal/trading"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	type instrument struct {
		name string
		vol  float64
		seed uint64
	}
	instruments := []instrument{
		{"EURUSD", 0.0015, 101},
		{"USDJPY", 0.0025, 202},
		{"GBPUSD", 0.0020, 303},
	}

	mach, err := machine.New(machine.XeonPhi3120A(), machine.NoLoad, machine.DefaultCostModel(), 99)
	if err != nil {
		return err
	}
	k := kernel.New(engine.New(), mach)

	// One task per instrument: T=1s ticks, m=w=100ms, five technical
	// indicators as parallel optional parts that always overrun.
	pipes := make(map[string]*trading.Pipeline, len(instruments))
	apps := make(map[string]core.App, len(instruments))
	tasks := make([]task.Task, 0, len(instruments))
	for _, ins := range instruments {
		feed, err := trading.NewFeed(trading.FeedConfig{Seed: ins.seed, Volatility: ins.vol})
		if err != nil {
			return err
		}
		// Four indicators -> np=4: with All-by-All each task's optional
		// parts fill exactly one core, so neighbouring tasks never share a
		// hardware thread (see the cross-task starvation finding in
		// EXPERIMENTS.md for what sharing would do).
		pipe, err := trading.NewPipeline(feed, trading.DefaultTechnical()[:4],
			trading.NewEngine(), trading.NewBroker(), 0)
		if err != nil {
			return err
		}
		pipes[ins.name] = pipe
		apps[ins.name] = core.App{
			OnMandatory: pipe.OnMandatory,
			OnOptional:  pipe.OnOptional,
			OnWindup:    pipe.OnWindup,
		}
		tasks = append(tasks, task.Uniform(ins.name,
			100*time.Millisecond, 100*time.Millisecond,
			2*time.Second, pipe.NumOptional(), time.Second))
	}
	set, err := task.NewSet(tasks...)
	if err != nil {
		return err
	}

	sys, err := sched.NewPRMWP(k, sched.PRMWPConfig{
		Set:            set,
		Horizon:        120 * time.Second,
		Policy:         assign.AllByAll, // keep each task's parts on its own cores
		Heuristic:      partition.WorstFit,
		OverheadMargin: 20 * time.Millisecond,
		Apps:           apps,
	})
	if err != nil {
		return err
	}
	sys.Start()
	k.Run()

	fmt.Println("instrument  processor  jobs  misses  QoS    trades  waits  pnl")
	for _, ins := range instruments {
		st := sys.Processes[ins.name].Stats()
		met := pipes[ins.name].Metrics()
		fmt.Printf("%-10s  %9d  %4d  %6d  %.3f  %6d  %5d  %+.5f\n",
			ins.name, sys.Assignment.Processor[ins.name],
			st.Jobs, st.DeadlineMisses, st.MeanQoS,
			met.Trades, met.Waits, met.FinalPnL)
	}
	total := 0.0
	for _, pipe := range pipes {
		total += pipe.Metrics().FinalPnL
	}
	fmt.Printf("\nportfolio mark-to-mid PnL: %+.5f\n", total)
	return nil
}
