// Trading: the paper's motivating real-time trading system (§II-A) in both
// execution modes.
//
// Part 1 runs the trading pipeline on the simulated kernel under P-RMWP,
// comparing a generous optional deadline (analyses complete — precise) with
// a tight one (analyses terminated — imprecise but timely), showing the QoS
// difference.
//
// Part 2 runs the same pipeline for a few seconds of real wall-clock time
// on the Go runtime via internal/rt — the best-effort mode with documented
// caveats.
//
//	go run ./examples/trading
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/rt"
	"rtseed/internal/task"
	"rtseed/internal/trading"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Simulated Xeon Phi, P-RMWP ==")
	// Tight deadline: optional parts overrun and are terminated.
	if err := simulated("imprecise (analyses terminated at OD)", 2.0); err != nil {
		return err
	}
	// Generous deadline: the analyses complete.
	if err := simulated("precise (analyses complete before OD)", 0.5); err != nil {
		return err
	}
	fmt.Println("== Wall-clock Go runtime (best effort) ==")
	return wallclock()
}

// simulated trades 120 ticks on the simulator. odScale sets each optional
// part's execution time as a multiple of the optional-deadline headroom.
func simulated(label string, odScale float64) error {
	const (
		period  = time.Second
		mPart   = 250 * time.Millisecond
		wExec   = 150 * time.Millisecond
		od      = 750 * time.Millisecond // D - w, Theorem 2 of [5] with n=1
		jobs    = 120
		feedVol = 0.002
	)
	feed, err := trading.NewFeed(trading.FeedConfig{Seed: 7, Volatility: feedVol})
	if err != nil {
		return err
	}
	pipe, err := trading.NewPipeline(feed, trading.DefaultTechnical(),
		trading.NewEngine(), trading.NewBroker(), 0)
	if err != nil {
		return err
	}
	mach, err := machine.New(machine.XeonPhi3120A(), machine.NoLoad, machine.DefaultCostModel(), 7)
	if err != nil {
		return err
	}
	k := kernel.New(engine.New(), mach)
	np := pipe.NumOptional()
	cpus, err := assign.HWThreads(mach.Topology(), assign.OneByOne, np)
	if err != nil {
		return err
	}
	optExec := time.Duration(odScale * float64(od-mPart))
	p, err := core.NewProcess(k, core.Config{
		Task:              task.Uniform("trader", mPart, wExec, optExec, np, period),
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  od,
		Jobs:              jobs,
		App: core.App{
			OnMandatory: pipe.OnMandatory,
			OnOptional:  pipe.OnOptional,
			OnWindup:    pipe.OnWindup,
		},
	})
	if err != nil {
		return err
	}
	p.Start()
	k.Run()
	st := p.Stats()
	fmt.Printf("%-42s misses=%d partQoS=%.2f decisionQoS=%.2f trades=%d pnl=%+.5f\n",
		label, st.DeadlineMisses, st.MeanQoS, pipe.MeanQoS(),
		pipe.Broker().Trades(), pipe.Broker().Equity())
	return nil
}

// wallclock trades 20 ticks at a 100ms period in real time.
func wallclock() error {
	feed, err := trading.NewFeed(trading.FeedConfig{Seed: 9, Volatility: 0.002})
	if err != nil {
		return err
	}
	pipe, err := trading.NewPipeline(feed, trading.DefaultTechnical(),
		trading.NewEngine(), trading.NewBroker(), 0)
	if err != nil {
		return err
	}
	np := pipe.NumOptional()
	optionals := make([]rt.OptionalFunc, np)
	for kIdx := 0; kIdx < np; kIdx++ {
		kIdx := kIdx
		// Each optional part refines its indicator in 20 anytime steps of
		// ~5ms; the cancellation at the optional deadline reports the
		// progress achieved.
		optionals[kIdx] = rt.SpinOptional(20, 5*time.Millisecond, nil)
	}
	var jobNow int
	runner, err := rt.NewRunner(rt.Config{
		Name:             "trader-rt",
		Period:           100 * time.Millisecond,
		OptionalDeadline: 70 * time.Millisecond,
		Jobs:             20,
		Mandatory: func(job int) {
			jobNow = job
			pipe.OnMandatory(job)
		},
		Optional: optionals,
		Windup: func(job int, progress []float64) {
			for k, p := range progress {
				pipe.OnOptional(jobNow, k, p)
			}
			pipe.OnWindup(job, progress)
		},
	})
	if err != nil {
		return err
	}
	reports, err := runner.Run(context.Background())
	if err != nil {
		return err
	}
	misses := 0
	meanProgress := 0.0
	for _, r := range reports {
		if !r.Met {
			misses++
		}
		for _, p := range r.Progress {
			meanProgress += p
		}
	}
	meanProgress /= float64(len(reports) * np)
	fmt.Printf("wall-clock: %d jobs, %d soft-deadline misses, mean progress %.2f, trades=%d pnl=%+.5f\n",
		len(reports), misses, meanProgress, pipe.Broker().Trades(), pipe.Broker().Equity())
	return nil
}
