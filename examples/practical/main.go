// Practical: the practical imprecise computation model with multiple
// mandatory parts — the paper's stated future work (§VII, reference [33]) —
// running on the RT-Seed middleware.
//
// The task is a two-stage trading job: stage 1 ingests level-1 quotes and
// refines fast indicators; stage 2 ingests depth data and refines slow
// indicators; the wind-up merges both into the decision. Each stage has its
// own optional deadline derived from the task-level OD.
//
//	go run ./examples/practical
package main

import (
	"fmt"
	"log"
	"time"

	"rtseed/internal/analysis"
	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tk := task.PracticalTask{
		Name: "two-stage-trader",
		Sections: []task.Section{
			// Stage 1: fast quote processing + two fast analyses.
			{Mandatory: 15 * time.Millisecond, Optional: []time.Duration{time.Second, time.Second}},
			// Stage 2: depth processing + one slow analysis.
			{Mandatory: 20 * time.Millisecond, Optional: []time.Duration{2 * time.Second}},
		},
		Windup: 20 * time.Millisecond,
		Period: 100 * time.Millisecond,
	}

	// The RMWP analysis applies to the flattened task (Σm, w).
	res, err := analysis.RMWP(task.MustNewSet(tk.Flatten()))
	if err != nil {
		return err
	}
	od := res[0].OptionalDeadline - 5*time.Millisecond
	sectionODs, err := tk.SectionDeadlines(od)
	if err != nil {
		return err
	}
	fmt.Printf("task-level OD = %v; per-section optional deadlines = %v\n\n", od, sectionODs)

	mach, err := machine.New(machine.XeonPhi3120A(), machine.NoLoad, machine.DefaultCostModel(), 5)
	if err != nil {
		return err
	}
	k := kernel.New(engine.New(), mach)
	cpus, err := assign.HWThreads(mach.Topology(), assign.OneByOne, tk.NumOptional())
	if err != nil {
		return err
	}
	p, err := core.NewPracticalProcess(k, core.PracticalConfig{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  od,
		Jobs:              5,
		OnWindup: func(job int, progress []float64) {
			fmt.Printf("job %d: stage-1 parts %.0f%% / %.0f%%, stage-2 part %.0f%%\n",
				job, progress[0]*100, progress[1]*100, progress[2]*100)
		},
	})
	if err != nil {
		return err
	}
	p.Start()
	k.Run()
	st := p.Stats()
	fmt.Printf("\n%d jobs, %d deadline misses, mean QoS %.2f (%d parts terminated)\n",
		st.Jobs, st.DeadlineMisses, st.MeanQoS, st.TerminatedParts)
	return nil
}
