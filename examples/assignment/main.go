// Assignment: the three hardware-thread assignment policies of Fig. 8 on
// the Xeon Phi 3120A topology, plus their measured effect on the ending
// overhead (the Fig. 13 trade-off the paper's conclusion discusses).
//
//	go run ./examples/assignment
package main

import (
	"fmt"
	"log"
	"strings"

	"rtseed/internal/assign"
	"rtseed/internal/machine"
	"rtseed/internal/overhead"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo := machine.XeonPhi3120A()

	// Fig. 8: the layouts of 171 parallel optional parts.
	fmt.Println("Fig. 8 — assigning 171 parallel optional parts to hardware threads")
	for _, pol := range assign.Policies() {
		hws, err := assign.HWThreads(topo, pol, 171)
		if err != nil {
			return err
		}
		hist := assign.CoreHistogram(topo, hws)
		fmt.Printf("%-11s cores used: %2d  per-core occupancy: %s\n",
			pol, assign.DistinctCores(topo, hws), sketch(hist))
	}
	fmt.Println()

	// The trade-off: under background load, spreading parts over more
	// cores (One by One) raises the ending overhead because every part
	// shares its core with background tasks; packing them (All by All)
	// displaces the background entirely.
	fmt.Println("Ending overhead Δe at np=57 under CPU-Memory load (Fig. 13c):")
	for _, pol := range assign.Policies() {
		m, err := overhead.Run(overhead.Config{
			Load:     machine.CPUMemoryLoad,
			Policy:   pol,
			NumParts: 57,
			Jobs:     20,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-11s Δe = %v\n", pol, m.Mean(overhead.DeltaE).Round(10_000))
	}
	fmt.Println("\nOne by One pays the highest ending overhead under load, but spreads")
	fmt.Println("parts one per core — the layout with the most parallel QoS headroom.")
	return nil
}

// sketch renders a core histogram as a compact run-length string,
// e.g. "4x28 3x1 2x28".
func sketch(hist []int) string {
	var parts []string
	i := 0
	for i < len(hist) {
		j := i
		for j < len(hist) && hist[j] == hist[i] {
			j++
		}
		parts = append(parts, fmt.Sprintf("%dx%d", hist[i], j-i))
		i = j
	}
	return strings.Join(parts, " ")
}
