// Termination: the three optional-part termination mechanisms of the
// paper's §IV-D and Table I, demonstrated behaviourally.
//
//	sigsetjmp/siglongjmp — terminates at any time, restores the signal
//	  mask: every job's overrunning optional parts are cut exactly at the
//	  optional deadline and all deadlines are met.
//	Periodic Check — cannot terminate at any time: parts overrun the
//	  optional deadline by up to one check period.
//	try-catch — terminates the first job, but never restores the signal
//	  mask, so from job 1 on the optional-deadline timer cannot fire and
//	  the task falls apart.
//
//	go run ./examples/termination
package main

import (
	"fmt"
	"log"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mechanisms := []core.Termination{
		core.SigjmpTermination{},
		core.PeriodicCheckTermination{Period: 7 * time.Millisecond},
		core.TryCatchTermination{},
	}
	fmt.Println("Table I — how the parallel optional parts are terminated")
	fmt.Printf("%-22s %-22s %-22s\n", "Implementation", "Any Time Termination", "Signal Mask Restoration")
	for _, m := range mechanisms {
		fmt.Printf("%-22s %-22v %-22v\n", m.Name(), m.AnyTime(), m.RestoresSignalMask())
	}
	fmt.Println()

	for _, m := range mechanisms {
		if err := demo(m); err != nil {
			return err
		}
	}
	return nil
}

func demo(term core.Termination) error {
	mach, err := machine.New(machine.Topology{Cores: 8, ThreadsPerCore: 4},
		machine.NoLoad, machine.DefaultCostModel(), 3)
	if err != nil {
		return err
	}
	k := kernel.New(engine.New(), mach)
	// Period 100ms, m=w=20ms, OD at 70ms; two optional parts of 1s each
	// overrun every job.
	tk := task.Uniform("demo", 20*time.Millisecond, 20*time.Millisecond,
		time.Second, 2, 100*time.Millisecond)
	cpus, err := assign.HWThreads(mach.Topology(), assign.OneByOne, 2)
	if err != nil {
		return err
	}
	var windupLag []time.Duration
	p, err := core.NewProcess(k, core.Config{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  70 * time.Millisecond,
		Jobs:              4,
		Termination:       term,
		Probes: core.Probes{
			OnWindupStart: func(job int, od, start engine.Time) {
				windupLag = append(windupLag, start.Sub(od))
			},
		},
	})
	if err != nil {
		return err
	}
	p.Start()
	k.RunUntil(engine.At(10 * time.Second))

	fmt.Printf("%s:\n", term.Name())
	for _, rec := range p.Records() {
		status := "met"
		if !rec.Met() {
			status = "MISSED"
		}
		outcomes := ""
		for i, part := range rec.Parts {
			if i > 0 {
				outcomes += ","
			}
			outcomes += part.Outcome.String()
		}
		lag := time.Duration(0)
		if rec.Job < len(windupLag) {
			lag = windupLag[rec.Job]
		}
		fmt.Printf("  job %d: parts [%s], wind-up %8v after OD, deadline %s\n",
			rec.Job, outcomes, lag.Round(10*time.Microsecond), status)
	}
	fmt.Println()
	return nil
}
