module rtseed

go 1.22
