// Command rtseed-overhead regenerates the paper's overhead evaluation
// (Figs. 10-13): the four overheads of the parallel-extended imprecise
// computation model swept over the number of parallel optional parts, the
// three hardware-thread assignment policies, and the three background
// loads, on the simulated Xeon Phi 3120A.
//
// Usage:
//
//	rtseed-overhead [-fig 10|11|12|13|0] [-jobs N] [-quick] [-workers N]
//
// -fig 0 (default) prints every figure. -quick reduces the sweep and job
// count for a fast sanity run. -workers bounds how many sweep cells are
// simulated in parallel (default GOMAXPROCS); every cell is an independent
// deterministic simulation, so the figures are identical for any value.
package main

import (
	"flag"
	"fmt"
	"os"

	"rtseed/internal/assign"
	"rtseed/internal/machine"
	"rtseed/internal/overhead"
	"rtseed/internal/prof"
	"rtseed/internal/report"
	"rtseed/internal/sweep"
)

// options is the parsed command line.
type options struct {
	fig        int
	jobs       int
	quick      bool
	seed       uint64
	csvPath    string
	dist       bool
	workers    int
	cpuprofile string
	memprofile string
}

// parseFlags registers the command's flags on fs, parses args, and validates
// the result. The flag set is injected so tests can parse without touching
// the process-global flag.CommandLine.
func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.IntVar(&o.fig, "fig", 0, "figure to regenerate (10-13; 0 = all)")
	fs.IntVar(&o.jobs, "jobs", 100, "jobs per measurement (the paper uses 100)")
	fs.BoolVar(&o.quick, "quick", false, "reduced sweep for a fast run")
	fs.Uint64Var(&o.seed, "seed", 0, "machine jitter seed (0 = default)")
	fs.StringVar(&o.csvPath, "csv", "", "also write the sweep as CSV to this file")
	fs.BoolVar(&o.dist, "dist", false, "print overhead distributions (p50/p95/p99) at np=228 instead of the sweep")
	fs.IntVar(&o.workers, "workers", sweep.DefaultWorkers(), "sweep cells simulated in parallel (results are identical for any value)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile taken after the run to this file")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := sweep.ValidateWorkers(o.workers); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	o, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-overhead:", err)
		os.Exit(2)
	}
	stop, err := prof.Start(o.cpuprofile, o.memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-overhead:", err)
		os.Exit(1)
	}
	if o.dist {
		err = runDistributions(o.jobs, o.seed)
	} else {
		err = run(o.fig, o.jobs, o.quick, o.seed, o.csvPath, o.workers)
	}
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-overhead:", err)
		os.Exit(1)
	}
}

// runDistributions prints per-overhead latency distributions at the
// worst-case operating point (np=228, One by One).
func runDistributions(jobs int, seed uint64) error {
	for _, load := range machine.Loads() {
		m, err := overhead.Run(overhead.Config{
			Load:     load,
			Policy:   assign.OneByOne,
			NumParts: 228,
			Jobs:     jobs,
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("Overhead distributions — %s, np=228, One by One, %d jobs\n", load, jobs)
		tbl := report.NewTable("overhead", "mean", "p50", "p95", "p99", "max", "stddev")
		for _, kind := range overhead.Kinds() {
			d := m.Distribution(kind)
			tbl.AddRow(kind.String(), d.Mean, d.P50, d.P95, d.P99, d.Max, d.StdDev)
		}
		fmt.Println(tbl)
	}
	return nil
}

func run(fig, jobs int, quick bool, seed uint64, csvPath string, workers int) error {
	cfg := overhead.SweepConfig{Jobs: jobs, Seed: seed, Workers: workers}
	if quick {
		cfg.NumParts = []int{4, 57, 228}
		if jobs > 10 {
			cfg.Jobs = 10
		}
	}
	var kinds []overhead.Kind
	for _, k := range overhead.Kinds() {
		if fig == 0 || k.Figure() == fig {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 0 {
		return fmt.Errorf("unknown figure %d (want 10-13 or 0)", fig)
	}

	allFigs, err := overhead.SweepAll(cfg)
	if err != nil {
		return err
	}
	for _, load := range machine.Loads() {
		for _, kind := range kinds {
			fd := overhead.ByKindLoad(allFigs, kind, load)
			if fd == nil {
				continue
			}
			fmt.Printf("Figure %d (%s) — %s — mean over %d jobs\n",
				kind.Figure(), kind, load, cfg.Jobs)
			tbl := report.NewTable(append([]string{"np"}, policyNames(fd)...)...)
			for i, pt := range fd.Series[0].Points {
				row := []any{pt.NumParts}
				for _, s := range fd.Series {
					row = append(row, s.Points[i].Mean)
				}
				tbl.AddRow(row...)
			}
			fmt.Println(tbl)
		}
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := overhead.WriteCSV(f, allFigs); err != nil {
			return err
		}
		fmt.Printf("CSV written to %s\n", csvPath)
	}
	return nil
}

func policyNames(fd *overhead.FigureData) []string {
	out := make([]string, len(fd.Series))
	for i, s := range fd.Series {
		out[i] = s.Policy.String()
	}
	return out
}
