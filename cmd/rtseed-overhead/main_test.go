package main

import "testing"

func TestRunQuickSingleFigure(t *testing.T) {
	if err := run(13, 3, true, 0, "", 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(99, 3, true, 0, "", 2); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunWithCSV(t *testing.T) {
	path := t.TempDir() + "/figs.csv"
	if err := run(10, 2, true, 0, path, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunDistributions(t *testing.T) {
	if err := runDistributions(3, 0); err != nil {
		t.Fatal(err)
	}
}
