package main

import (
	"flag"
	"io"
	"runtime"
	"strings"
	"testing"
)

func testFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("rtseed-overhead", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(testFlagSet(), nil)
	if err != nil {
		t.Fatalf("parseFlags(nil) = %v", err)
	}
	if want := runtime.GOMAXPROCS(0); o.workers != want {
		t.Errorf("default workers = %d, want GOMAXPROCS (%d)", o.workers, want)
	}
	if o.fig != 0 || o.jobs != 100 || o.quick || o.dist {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestParseFlagsWorkersExplicit(t *testing.T) {
	o, err := parseFlags(testFlagSet(), []string{"-workers", "3", "-fig", "11"})
	if err != nil {
		t.Fatalf("parseFlags = %v", err)
	}
	if o.workers != 3 || o.fig != 11 {
		t.Errorf("got workers=%d fig=%d, want 3, 11", o.workers, o.fig)
	}
}

func TestParseFlagsRejectsNonPositiveWorkers(t *testing.T) {
	for _, bad := range []string{"0", "-1", "-8"} {
		_, err := parseFlags(testFlagSet(), []string{"-workers", bad})
		if err == nil {
			t.Errorf("-workers %s: accepted, want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "GOMAXPROCS") {
			t.Errorf("-workers %s: error %q should point at the GOMAXPROCS default", bad, err)
		}
	}
}

func TestRunQuickSingleFigure(t *testing.T) {
	if err := run(13, 3, true, 0, "", 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(99, 3, true, 0, "", 2); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunWithCSV(t *testing.T) {
	path := t.TempDir() + "/figs.csv"
	if err := run(10, 2, true, 0, path, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunDistributions(t *testing.T) {
	if err := runDistributions(3, 0); err != nil {
		t.Fatal(err)
	}
}

func TestParseFlagsProfilePaths(t *testing.T) {
	o, err := parseFlags(testFlagSet(), []string{"-cpuprofile", "cpu.prof", "-memprofile", "mem.prof"})
	if err != nil {
		t.Fatalf("parseFlags = %v", err)
	}
	if o.cpuprofile != "cpu.prof" || o.memprofile != "mem.prof" {
		t.Errorf("profile paths = %q, %q; want cpu.prof, mem.prof", o.cpuprofile, o.memprofile)
	}
	if o, err = parseFlags(testFlagSet(), nil); err != nil || o.cpuprofile != "" || o.memprofile != "" {
		t.Errorf("profiling not off by default: %+v (err %v)", o, err)
	}
}
