package main

import (
	"bytes"
	"flag"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rtseed/internal/workload"
)

func testArgs(extra ...string) []string {
	base := []string{
		"-clients", "250", "-machines", "3", "-cores", "4", "-smt", "2",
		"-horizon", "250ms", "-seed", "5",
	}
	return append(base, extra...)
}

func runWithArgs(t *testing.T, args []string) string {
	t.Helper()
	fs := flag.NewFlagSet("rtseed-cluster", flag.ContinueOnError)
	o, err := parseFlags(fs, args)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, nil, o); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestReportDeterministicAcrossWorkers is the command's contract: stdout is
// byte-identical for any -workers value.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	ref := runWithArgs(t, testArgs("-workers", "1"))
	for _, workers := range []string{"7", "8"} {
		got := runWithArgs(t, testArgs("-workers", workers))
		if got != ref {
			t.Errorf("-workers %s output differs from -workers 1", workers)
		}
	}
	for _, want := range []string{"## admission", "## placement", "## service by class", "## epochs", "simulated events:"} {
		if !strings.Contains(ref, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestReportWithTraceDir checks the per-machine trace files are written and
// the merged summary section appears and is consistent.
func TestReportWithTraceDir(t *testing.T) {
	dir := t.TempDir()
	out := runWithArgs(t, testArgs("-trace-dir", dir))
	if !strings.Contains(out, "## merged trace summary") {
		t.Fatalf("missing merged trace summary section:\n%s", out)
	}
	for i := 0; i < 3; i++ {
		if m, _ := filepath.Glob(filepath.Join(dir, "machine-00*.rtt")); len(m) != 3 {
			t.Fatalf("expected 3 trace files, found %v", m)
		}
	}
}

// TestQuickPreset checks -quick overrides the population knobs.
func TestQuickPreset(t *testing.T) {
	fs := flag.NewFlagSet("rtseed-cluster", flag.ContinueOnError)
	o, err := parseFlags(fs, []string{"-quick"})
	if err != nil {
		t.Fatal(err)
	}
	if o.clients != 2000 || o.machines != 4 {
		t.Fatalf("quick preset not applied: %+v", o)
	}
}

// TestParseFlagsErrors covers the rejection paths.
func TestParseFlagsErrors(t *testing.T) {
	bad := [][]string{
		{"-policy", "best-fit"},
		{"-load", "gpu"},
		{"-workers", "0"},
		{"-workers", "-3"},
	}
	for _, args := range bad {
		fs := flag.NewFlagSet("rtseed-cluster", flag.ContinueOnError)
		fs.SetOutput(&bytes.Buffer{})
		if _, err := parseFlags(fs, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestSpecAndReplayFlags drives -spec and -replay end to end: a builtin
// bursty spec produces the per-window table, and replaying its recorded
// trace reproduces the generating run's report byte-for-byte.
func TestSpecAndReplayFlags(t *testing.T) {
	dir := t.TempDir()
	trPath := filepath.Join(dir, "fc.rtk")

	spec, _ := workload.BuiltinSpec("flash-crash")
	src, err := workload.Compile(spec, workload.CompileConfig{
		Clients: 250, Seed: 5, Horizon: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteFile(trPath, src.Trace(100)); err != nil {
		t.Fatal(err)
	}

	gen := runWithArgs(t, testArgs("-spec", "flash-crash", "-margin", "0"))
	if !strings.Contains(gen, "## service by window") || !strings.Contains(gen, "crash") {
		t.Fatalf("spec report missing window table:\n%s", gen)
	}
	if !strings.Contains(gen, "workload flash-crash") {
		t.Errorf("spec report missing workload name")
	}
	rep := runWithArgs(t, testArgs("-replay", trPath, "-margin", "0"))
	if gen != rep {
		t.Fatalf("replay report differs from generating run:\n--- gen\n%s\n--- replay\n%s", gen, rep)
	}

	fs := flag.NewFlagSet("rtseed-cluster", flag.ContinueOnError)
	if _, err := parseFlags(fs, testArgs("-spec", "flash-crash", "-replay", trPath)); err == nil {
		t.Error("-spec with -replay parsed, want error")
	}
}
