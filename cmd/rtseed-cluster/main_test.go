package main

import (
	"bytes"
	"flag"
	"path/filepath"
	"strings"
	"testing"
)

func testArgs(extra ...string) []string {
	base := []string{
		"-clients", "250", "-machines", "3", "-cores", "4", "-smt", "2",
		"-horizon", "250ms", "-seed", "5",
	}
	return append(base, extra...)
}

func runWithArgs(t *testing.T, args []string) string {
	t.Helper()
	fs := flag.NewFlagSet("rtseed-cluster", flag.ContinueOnError)
	o, err := parseFlags(fs, args)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, nil, o); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestReportDeterministicAcrossWorkers is the command's contract: stdout is
// byte-identical for any -workers value.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	ref := runWithArgs(t, testArgs("-workers", "1"))
	for _, workers := range []string{"7", "8"} {
		got := runWithArgs(t, testArgs("-workers", workers))
		if got != ref {
			t.Errorf("-workers %s output differs from -workers 1", workers)
		}
	}
	for _, want := range []string{"## admission", "## placement", "## service by class", "## epochs", "simulated events:"} {
		if !strings.Contains(ref, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestReportWithTraceDir checks the per-machine trace files are written and
// the merged summary section appears and is consistent.
func TestReportWithTraceDir(t *testing.T) {
	dir := t.TempDir()
	out := runWithArgs(t, testArgs("-trace-dir", dir))
	if !strings.Contains(out, "## merged trace summary") {
		t.Fatalf("missing merged trace summary section:\n%s", out)
	}
	for i := 0; i < 3; i++ {
		if m, _ := filepath.Glob(filepath.Join(dir, "machine-00*.rtt")); len(m) != 3 {
			t.Fatalf("expected 3 trace files, found %v", m)
		}
	}
}

// TestQuickPreset checks -quick overrides the population knobs.
func TestQuickPreset(t *testing.T) {
	fs := flag.NewFlagSet("rtseed-cluster", flag.ContinueOnError)
	o, err := parseFlags(fs, []string{"-quick"})
	if err != nil {
		t.Fatal(err)
	}
	if o.clients != 2000 || o.machines != 4 {
		t.Fatalf("quick preset not applied: %+v", o)
	}
}

// TestParseFlagsErrors covers the rejection paths.
func TestParseFlagsErrors(t *testing.T) {
	bad := [][]string{
		{"-policy", "best-fit"},
		{"-load", "gpu"},
		{"-workers", "0"},
		{"-workers", "-3"},
	}
	for _, args := range bad {
		fs := flag.NewFlagSet("rtseed-cluster", flag.ContinueOnError)
		fs.SetOutput(&bytes.Buffer{})
		if _, err := parseFlags(fs, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
