// Command rtseed-cluster runs the fleet-scale simulation: it offers a
// population of client task sets to N simulated trading machines, admits
// them with the analytical P-RMWP response-time test, routes them with the
// selected policy, simulates every machine in parallel, and reports the
// admission funnel, per-class deadline-miss rates, placement, and epoch
// signals.
//
// Usage:
//
//	rtseed-cluster [-clients N] [-machines N] [-cores N] [-smt N]
//	               [-policy first-fit|worst-fit|least-loaded|affinity]
//	               [-load none|cpu|cpumem] [-horizon D] [-epoch D]
//	               [-seed N] [-margin D] [-workers N] [-trace-dir DIR]
//	               [-spec FILE|NAME] [-replay FILE.rtk]
//	               [-quick] [-bench] [-o FILE]
//
// -spec compiles a workload spec (a JSON file or a builtin name: steady,
// flash-crash, open-close) into the offered population; -replay loads a
// recorded .rtk trace and reproduces its generating run exactly (clients,
// seed, and horizon come from the trace, so the report matches the
// generating run's byte-for-byte under the same fleet flags).
//
// The report (stdout or -o) is a pure function of the flags — byte-identical
// for any -workers value. Wall-clock timing and the -bench speedup
// measurement go to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"rtseed/internal/cluster"
	"rtseed/internal/machine"
	"rtseed/internal/report"
	"rtseed/internal/sweep"
	"rtseed/internal/trace"
	"rtseed/internal/workload"
)

// options is the parsed command line.
type options struct {
	clients  int
	machines int
	cores    int
	smt      int
	policy   cluster.Policy
	load     machine.Load
	horizon  time.Duration
	epoch    time.Duration
	seed     uint64
	margin   time.Duration
	workers  int
	traceDir string
	spec     string
	replay   string
	quick    bool
	bench    bool
	out      string
}

// parseFlags registers the command's flags on fs, parses args, and
// validates the result. The flag set is injected so tests can parse without
// touching the process-global flag.CommandLine.
func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	var policyName, loadName string
	fs.IntVar(&o.clients, "clients", 10000, "client task sets offered to the fleet")
	fs.IntVar(&o.machines, "machines", 8, "simulated machines in the fleet")
	fs.IntVar(&o.cores, "cores", 16, "cores per machine")
	fs.IntVar(&o.smt, "smt", 2, "SMT threads per core")
	fs.StringVar(&policyName, "policy", "first-fit", "routing policy: first-fit, worst-fit, least-loaded, or affinity")
	fs.StringVar(&loadName, "load", "none", "background load on every machine: none, cpu, or cpumem")
	fs.DurationVar(&o.horizon, "horizon", time.Second, "simulated duration")
	fs.DurationVar(&o.epoch, "epoch", 0, "barrier interval for cross-machine signals (default horizon/8)")
	fs.Uint64Var(&o.seed, "seed", 1, "seed for the client population and machine jitter")
	fs.DurationVar(&o.margin, "margin", cluster.DefaultOverheadPerPart, "admission inflation per mandatory/wind-up part (0 disables)")
	fs.IntVar(&o.workers, "workers", sweep.DefaultWorkers(), "machines simulated in parallel (the report is identical for any value)")
	fs.StringVar(&o.traceDir, "trace-dir", "", "write one .rtt trace per machine to this directory and report the merged summary")
	fs.StringVar(&o.spec, "spec", "", "workload spec: a JSON file or a builtin name (steady, flash-crash, open-close)")
	fs.StringVar(&o.replay, "replay", "", "replay a recorded .rtk workload trace (its clients, seed, and horizon override the flags)")
	fs.BoolVar(&o.quick, "quick", false, "reduced population and horizon for a fast run")
	fs.BoolVar(&o.bench, "bench", false, "also run with -workers 1 and report the parallel speedup to stderr")
	fs.StringVar(&o.out, "o", "", "write the report to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	var err error
	if o.policy, err = cluster.ParsePolicy(policyName); err != nil {
		return nil, err
	}
	if o.load, err = parseLoad(loadName); err != nil {
		return nil, err
	}
	if err := sweep.ValidateWorkers(o.workers); err != nil {
		return nil, err
	}
	if o.spec != "" && o.replay != "" {
		return nil, fmt.Errorf("-spec and -replay are mutually exclusive")
	}
	if o.quick {
		o.clients = 2000
		o.machines = 4
		o.horizon = 300 * time.Millisecond
	}
	return o, nil
}

func parseLoad(s string) (machine.Load, error) {
	switch s {
	case "none":
		return machine.NoLoad, nil
	case "cpu":
		return machine.CPULoad, nil
	case "cpumem":
		return machine.CPUMemoryLoad, nil
	default:
		return 0, fmt.Errorf("unknown load %q (want none, cpu, cpumem)", s)
	}
}

// config maps the options onto the cluster configuration.
func (o *options) config() cluster.Config {
	margin := o.margin
	if margin == 0 {
		margin = -1 // cluster.Config treats 0 as "default"; negative disables
	}
	return cluster.Config{
		Machines:        o.machines,
		Topology:        machine.Topology{Cores: o.cores, ThreadsPerCore: o.smt},
		Load:            o.load,
		Policy:          o.policy,
		Clients:         o.clients,
		Seed:            o.seed,
		Horizon:         o.horizon,
		Epoch:           o.epoch,
		OverheadPerPart: margin,
		Workers:         o.workers,
		TraceDir:        o.traceDir,
	}
}

func main() {
	o, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-cluster:", err)
		os.Exit(2)
	}
	w := io.Writer(os.Stdout)
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtseed-cluster:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(w, os.Stderr, o); err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-cluster:", err)
		os.Exit(1)
	}
}

// run executes the cluster and writes the deterministic report to w and
// timing to timing (nil discards it).
func run(w, timing io.Writer, o *options) error {
	if timing == nil {
		timing = io.Discard
	}
	if o.traceDir != "" {
		if err := os.MkdirAll(o.traceDir, 0o755); err != nil {
			return err
		}
	}
	cfg := o.config()
	if o.spec != "" {
		spec, err := loadSpec(o.spec)
		if err != nil {
			return err
		}
		src, err := workload.Compile(spec, workload.CompileConfig{
			Clients: o.clients, Seed: cfg.Seed, Horizon: cfg.Horizon,
		})
		if err != nil {
			return err
		}
		cfg.Source = src
	}
	if o.replay != "" {
		tr, err := workload.ReadFile(o.replay)
		if err != nil {
			return err
		}
		cfg.Source = workload.NewReplay(tr)
		cfg.Seed = tr.Meta.Seed
		cfg.Horizon = tr.Meta.Horizon
	}

	admitStart := time.Now()
	plan, err := cluster.NewPlan(cfg)
	if err != nil {
		return err
	}
	admitWall := time.Since(admitStart)

	simStart := time.Now()
	res, err := plan.Simulate()
	if err != nil {
		return err
	}
	simWall := time.Since(simStart)

	if err := report1(w, o, plan.Config(), res); err != nil {
		return err
	}

	fmt.Fprintf(timing, "admission: %v for %d clients; simulation: %v, %.2fM simulated events/sec (workers=%d)\n",
		admitWall.Round(time.Millisecond), res.Offered, simWall.Round(time.Millisecond),
		float64(res.Events)/simWall.Seconds()/1e6, o.workers)
	if o.bench {
		cfg1 := cfg
		cfg1.Workers = 1
		cfg1.TraceDir = "" // don't rewrite the trace files on the timing run
		plan1, err := cluster.NewPlan(cfg1)
		if err != nil {
			return err
		}
		seqStart := time.Now()
		if _, err := plan1.Simulate(); err != nil {
			return err
		}
		seq := time.Since(seqStart)
		fmt.Fprintf(timing, "speedup: %.2fx (workers=1: %v, workers=%d: %v)\n",
			float64(seq)/float64(simWall), seq.Round(time.Millisecond), o.workers, simWall.Round(time.Millisecond))
	}
	return nil
}

// report1 writes the deterministic report.
func report1(w io.Writer, o *options, cfg cluster.Config, res *cluster.Result) error {
	fmt.Fprintf(w, "# rtseed-cluster\n\n")
	fmt.Fprintf(w, "fleet: %d machines x (%d cores x %d SMT), policy %s, load %s\n",
		cfg.Machines, cfg.Topology.Cores, cfg.Topology.ThreadsPerCore, cfg.Policy, cfg.Load)
	fmt.Fprintf(w, "offered: %d clients (workload %s), seed %d, horizon %v, epoch %v, margin %v/part\n\n",
		cfg.Clients, res.Workload, cfg.Seed, cfg.Horizon, cfg.Epoch, cfg.OverheadPerPart)

	fmt.Fprintf(w, "## admission\n\n```\n")
	adm := report.NewTable("class", "offered", "admitted", "ratio", "tasks")
	for _, class := range cluster.Classes() {
		s := res.PerClass[class]
		adm.AddRow(class.String(), s.Offered, s.Admitted, s.AdmissionRatio(), s.Tasks)
	}
	adm.AddRow("total", res.Offered, res.Admitted, res.AdmissionRatio(), res.AdmittedTasks)
	fmt.Fprintf(w, "%s```\n\n", adm)

	fmt.Fprintf(w, "## placement (%d/%d machines used)\n\n```\n", res.MachinesUsed, cfg.Machines)
	mt := report.NewTable("machine", "clients", "tasks", "adm-util", "busy", "events", "jobs", "misses")
	for _, m := range res.Machines {
		mt.AddRow(fmt.Sprintf("m%03d", m.Machine), m.Clients, m.Tasks, m.Utilization, m.Busy, m.Events, m.Jobs, m.Misses)
	}
	fmt.Fprintf(w, "%s```\n\n", mt)

	fmt.Fprintf(w, "## service by class\n\n```\n")
	svc := report.NewTable("class", "jobs", "misses", "miss-rate")
	for _, class := range cluster.Classes() {
		s := res.PerClass[class]
		svc.AddRow(class.String(), s.Jobs, s.Misses, s.MissRate())
	}
	svc.AddRow("total", res.Jobs, res.Misses, missRate(res.Misses, res.Jobs))
	fmt.Fprintf(w, "%s```\n\n", svc)

	if len(res.Windows) > 0 {
		fmt.Fprintf(w, "## service by window\n\n```\n")
		wt := report.NewTable("window", "span", "rate", "offered", "admitted", "jobs", "misses", "miss-rate")
		for _, win := range res.Windows {
			wt.AddRow(win.Name, fmt.Sprintf("%v-%v", win.Start, win.End), win.Rate,
				win.Offered, win.Admitted, win.Jobs, win.Misses, win.MissRate())
		}
		fmt.Fprintf(w, "%s```\n\n", wt)
	}

	fmt.Fprintf(w, "## epochs\n\n```\n")
	et := report.NewTable("end", "jobs", "misses", "mean-busy", "max-busy")
	for _, e := range res.Epochs {
		et.AddRow(e.End.String(), e.Jobs, e.Misses, e.MeanBusy, e.MaxBusy)
	}
	fmt.Fprintf(w, "%s```\n\n", et)

	fmt.Fprintf(w, "simulated events: %d\n", res.Events)

	if o.traceDir != "" {
		merged, err := mergedSummary(o.traceDir, cfg.Machines)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n## merged trace summary (%s)\n\n```\n", filepath.ToSlash(o.traceDir))
		fmt.Fprintf(w, "files %d  tasks %d  jobs %d  misses %d  span %v  lost %d\n",
			merged.Files, merged.Tasks, merged.Jobs, merged.Misses, merged.Span, merged.Lost)
		fmt.Fprintf(w, "```\n")
	}
	return nil
}

func missRate(misses, jobs int) float64 {
	if jobs == 0 {
		return 0
	}
	return float64(misses) / float64(jobs)
}

// loadSpec resolves -spec: a builtin name first, else a JSON spec file.
func loadSpec(arg string) (workload.Spec, error) {
	if spec, ok := workload.BuiltinSpec(arg); ok {
		return spec, nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return workload.Spec{}, fmt.Errorf("-spec %q is neither a builtin name (%v) nor a readable file: %w",
			arg, workload.BuiltinSpecNames(), err)
	}
	defer f.Close()
	return workload.ParseSpec(f)
}

// mergedSummary reads the per-machine trace files back and folds their
// analyses into one fleet summary — the deterministic cross-check that the
// traces agree with the simulation's own counters.
func mergedSummary(dir string, machines int) (trace.MergedSummary, error) {
	var analyses []*trace.Analysis
	for i := 0; i < machines; i++ {
		tr, err := trace.ReadFile(filepath.Join(dir, cluster.TraceFileName(i)))
		if err != nil {
			return trace.MergedSummary{}, err
		}
		analyses = append(analyses, trace.Analyze(tr))
	}
	return trace.Merge(analyses...), nil
}
