// Command rtseed-benchjson converts `go test -bench` output into a JSON
// record, the repository's perf-trajectory format: `make bench-json` writes
// results/BENCH_PR3.json and CI uploads it as an artifact, so queue- and
// kernel-hot-path regressions show up as a diff instead of an anecdote.
//
// Usage:
//
//	go test -run=NONE -bench=... -benchmem ./... | rtseed-benchjson [-o FILE]
//
// Lines that are not benchmark results (test status, pkg headers) are
// ignored, so the raw `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -1 when the benchmark did not report
	// allocations (no -benchmem and no b.ReportAllocs).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is the file layout: the benchmark list plus the context lines the
// test binary prints (goos/goarch/pkg/cpu), which make numbers comparable
// across machines.
type Report struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

// parseBench reads a `go test -bench` stream and collects every benchmark
// result line, plus the goos/goarch/pkg/cpu context header.
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok && (k == "goos" || k == "goarch" || k == "pkg" || k == "cpu") {
			// Keep the first pkg; later packages in a ./... run would
			// overwrite it with less relevant values.
			if _, seen := rep.Context[k]; !seen {
				rep.Context[k] = v
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine decodes one result line:
//
//	BenchmarkName-8   123456   503.8 ns/op   32 B/op   1 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the name; B/op and allocs/op are
// optional.
func parseLine(line string) (Result, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, fmt.Errorf("rtseed-benchjson: short benchmark line %q", line)
	}
	res := Result{BytesPerOp: -1, AllocsPerOp: -1}
	res.Name = f[0]
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name = res.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("rtseed-benchjson: bad iteration count in %q: %v", line, err)
	}
	res.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if res.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, fmt.Errorf("rtseed-benchjson: bad ns/op in %q: %v", line, err)
			}
		case "B/op":
			if res.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("rtseed-benchjson: bad B/op in %q: %v", line, err)
			}
		case "allocs/op":
			if res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("rtseed-benchjson: bad allocs/op in %q: %v", line, err)
			}
		}
	}
	if res.NsPerOp == 0 && res.Iterations == 0 {
		return Result{}, fmt.Errorf("rtseed-benchjson: no measurements in %q", line)
	}
	return res, nil
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()
	rep, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "rtseed-benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtseed-benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-benchjson:", err)
		os.Exit(1)
	}
}
