// Command rtseed-benchjson converts `go test -bench` output into a JSON
// record, the repository's perf-trajectory format: `make bench-json` writes
// results/BENCH_PR3.json and CI uploads it as an artifact, so queue- and
// kernel-hot-path regressions show up as a diff instead of an anecdote.
//
// Usage:
//
//	go test -run=NONE -bench=... -benchmem ./... | rtseed-benchjson [-o FILE] [-baseline FILE]
//
// Lines that are not benchmark results (test status, pkg headers) are
// ignored, so the raw `go test` stream can be piped in unfiltered. Repeated
// results for the same benchmark (a -count run) collapse into one entry at
// the median ns/op, with the sample count recorded. With -baseline, each
// benchmark also present in the given prior report carries its before
// median and the speedup factor, so a PR's perf claim is embedded in the
// artifact instead of living in a commit message.
//
// Trajectory mode folds the per-PR reports into one longitudinal record:
//
//	rtseed-benchjson -trajectory [-o FILE] results/BENCH_PR3.json results/BENCH_PR6.json ...
//
// Each positional argument is a prior report; its BENCH_-stripped basename
// ("PR3") becomes the point label. Every benchmark that appears in any
// report gets a series of ns/op medians across the points it was measured
// at, so a hot path's history across the PR stack reads out of one file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement (the median when Samples > 1).
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -1 when the benchmark did not report
	// allocations (no -benchmem and no b.ReportAllocs).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Samples is how many result lines collapsed into this entry; omitted
	// for a single measurement.
	Samples int `json:"samples,omitempty"`
	// BaselineNsPerOp and Speedup compare against the -baseline report:
	// the prior median and baseline/current. Omitted without -baseline or
	// when the baseline lacks this benchmark.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// Report is the file layout: the benchmark list plus the context lines the
// test binary prints (goos/goarch/pkg/cpu), which make numbers comparable
// across machines.
type Report struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

// parseBench reads a `go test -bench` stream and collects every benchmark
// result line, plus the goos/goarch/pkg/cpu context header.
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok && (k == "goos" || k == "goarch" || k == "pkg" || k == "cpu") {
			// Keep the first pkg; later packages in a ./... run would
			// overwrite it with less relevant values.
			if _, seen := rep.Context[k]; !seen {
				rep.Context[k] = v
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rep.Benchmarks = collapse(rep.Benchmarks)
	return rep, nil
}

// collapse merges repeated measurements of the same benchmark (a -count or
// multi-pass run) into one entry at the median ns/op, keeping first-seen
// order. The median's own line supplies iterations and alloc stats — for an
// even sample count, the lower-ns member of the middle pair.
func collapse(in []Result) []Result {
	byName := make(map[string][]Result, len(in))
	var order []string
	for _, r := range in {
		if _, seen := byName[r.Name]; !seen {
			order = append(order, r.Name)
		}
		byName[r.Name] = append(byName[r.Name], r)
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		group := byName[name]
		if len(group) == 1 {
			out = append(out, group[0])
			continue
		}
		sort.SliceStable(group, func(i, j int) bool { return group[i].NsPerOp < group[j].NsPerOp })
		med := group[(len(group)-1)/2]
		med.Samples = len(group)
		out = append(out, med)
	}
	return out
}

// applyBaseline annotates rep's benchmarks with the prior medians from the
// baseline report.
func applyBaseline(rep *Report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("rtseed-benchjson: bad baseline %s: %v", path, err)
	}
	prior := make(map[string]float64, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		prior[r.Name] = r.NsPerOp
	}
	for i := range rep.Benchmarks {
		b := &rep.Benchmarks[i]
		if before, ok := prior[b.Name]; ok && before > 0 && b.NsPerOp > 0 {
			b.BaselineNsPerOp = before
			b.Speedup = before / b.NsPerOp
		}
	}
	return nil
}

// TrajectoryPoint is one measurement of a benchmark at one PR.
type TrajectoryPoint struct {
	Point   string  `json:"point"`
	NsPerOp float64 `json:"ns_per_op"`
}

// TrajectoryEntry is one benchmark's history across the PR reports it
// appears in. Delta is last/first ns/op over the series — below 1 the path
// got faster across the stack, above 1 it regressed.
type TrajectoryEntry struct {
	Name   string            `json:"name"`
	Series []TrajectoryPoint `json:"series"`
	Delta  float64           `json:"delta,omitempty"`
}

// Trajectory is the longitudinal file layout: the ordered point labels and
// one entry per benchmark ever measured.
type Trajectory struct {
	Points     []string          `json:"points"`
	Benchmarks []TrajectoryEntry `json:"benchmarks"`
}

// pointLabel derives a point name from a report path:
// results/BENCH_PR6.json → "PR6".
func pointLabel(path string) string {
	base := filepath.Base(path)
	base = strings.TrimSuffix(base, filepath.Ext(base))
	return strings.TrimPrefix(base, "BENCH_")
}

// buildTrajectory reads the per-PR reports in argument order and merges them
// into one record. Benchmarks keep first-seen order across the reports, so
// the output is a pure function of the inputs.
func buildTrajectory(paths []string) (*Trajectory, error) {
	traj := &Trajectory{}
	series := map[string][]TrajectoryPoint{}
	var order []string
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("rtseed-benchjson: bad report %s: %v", path, err)
		}
		label := pointLabel(path)
		traj.Points = append(traj.Points, label)
		for _, b := range rep.Benchmarks {
			if b.NsPerOp <= 0 {
				continue
			}
			if _, seen := series[b.Name]; !seen {
				order = append(order, b.Name)
			}
			series[b.Name] = append(series[b.Name], TrajectoryPoint{Point: label, NsPerOp: b.NsPerOp})
		}
	}
	for _, name := range order {
		s := series[name]
		e := TrajectoryEntry{Name: name, Series: s}
		if len(s) > 1 {
			e.Delta = s[len(s)-1].NsPerOp / s[0].NsPerOp
		}
		traj.Benchmarks = append(traj.Benchmarks, e)
	}
	return traj, nil
}

// parseLine decodes one result line:
//
//	BenchmarkName-8   123456   503.8 ns/op   32 B/op   1 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the name; B/op and allocs/op are
// optional.
func parseLine(line string) (Result, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, fmt.Errorf("rtseed-benchjson: short benchmark line %q", line)
	}
	res := Result{BytesPerOp: -1, AllocsPerOp: -1}
	res.Name = f[0]
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name = res.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("rtseed-benchjson: bad iteration count in %q: %v", line, err)
	}
	res.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if res.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, fmt.Errorf("rtseed-benchjson: bad ns/op in %q: %v", line, err)
			}
		case "B/op":
			if res.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("rtseed-benchjson: bad B/op in %q: %v", line, err)
			}
		case "allocs/op":
			if res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("rtseed-benchjson: bad allocs/op in %q: %v", line, err)
			}
		}
	}
	if res.NsPerOp == 0 && res.Iterations == 0 {
		return Result{}, fmt.Errorf("rtseed-benchjson: no measurements in %q", line)
	}
	return res, nil
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	baseline := flag.String("baseline", "", "prior report to compare against (adds baseline_ns_per_op and speedup)")
	trajectory := flag.Bool("trajectory", false, "merge the per-PR report files given as arguments into one longitudinal record")
	flag.Parse()

	var doc any
	if *trajectory {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "rtseed-benchjson: -trajectory needs at least one report file argument")
			os.Exit(2)
		}
		if *baseline != "" {
			fmt.Fprintln(os.Stderr, "rtseed-benchjson: -baseline does not apply in -trajectory mode")
			os.Exit(2)
		}
		traj, err := buildTrajectory(flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtseed-benchjson:", err)
			os.Exit(1)
		}
		doc = traj
	} else {
		rep, err := parseBench(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(rep.Benchmarks) == 0 {
			fmt.Fprintln(os.Stderr, "rtseed-benchjson: no benchmark results on stdin")
			os.Exit(1)
		}
		if *baseline != "" {
			if err := applyBaseline(rep, *baseline); err != nil {
				fmt.Fprintln(os.Stderr, "rtseed-benchjson:", err)
				os.Exit(1)
			}
		}
		doc = rep
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtseed-benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-benchjson:", err)
		os.Exit(1)
	}
}
