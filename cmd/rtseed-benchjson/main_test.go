package main

import (
	"os"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: rtseed
cpu: AMD EPYC 7B13
BenchmarkEngineScheduleStep-8   	 5000000	       221.4 ns/op	       0 B/op	       0 allocs/op
BenchmarkManyTaskKernel/release/n=1024-8         	 4795105	       498.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem-8	 1000000	      1234 ns/op
PASS
ok  	rtseed	12.345s
goos: linux
goarch: amd64
pkg: rtseed/internal/engine
BenchmarkWheel-8	 2000000	       100.0 ns/op	       8 B/op	       1 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Benchmarks), 4; got != want {
		t.Fatalf("parsed %d benchmarks, want %d", got, want)
	}
	// Context keeps the first pkg, not the later engine one.
	if rep.Context["pkg"] != "rtseed" {
		t.Errorf("context pkg = %q, want the first package", rep.Context["pkg"])
	}
	if rep.Context["cpu"] != "AMD EPYC 7B13" {
		t.Errorf("context cpu = %q", rep.Context["cpu"])
	}

	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkEngineScheduleStep" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", b.Name)
	}
	if b.Iterations != 5000000 || b.NsPerOp != 221.4 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("first result = %+v", b)
	}

	sub := rep.Benchmarks[1]
	if sub.Name != "BenchmarkManyTaskKernel/release/n=1024" {
		t.Errorf("sub-benchmark name = %q", sub.Name)
	}

	// No -benchmem columns → B/op and allocs/op report -1, not 0.
	nomem := rep.Benchmarks[2]
	if nomem.NsPerOp != 1234 || nomem.BytesPerOp != -1 || nomem.AllocsPerOp != -1 {
		t.Errorf("no-benchmem result = %+v", nomem)
	}
}

func TestParseLineErrors(t *testing.T) {
	for _, line := range []string{
		"BenchmarkShort-8 123",
		"BenchmarkBadIters-8 xx 10 ns/op",
		"BenchmarkBadNs-8 100 zz ns/op",
	} {
		if _, err := parseLine(line); err == nil {
			t.Errorf("parseLine(%q) succeeded, want error", line)
		}
	}
}

func TestCollapseMedian(t *testing.T) {
	const repeated = `BenchmarkHot-8 100 30.0 ns/op
BenchmarkHot-8 100 10.0 ns/op
BenchmarkOther-8 50 7.0 ns/op
BenchmarkHot-8 100 20.0 ns/op
`
	rep, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Benchmarks), 2; got != want {
		t.Fatalf("collapsed to %d benchmarks, want %d", got, want)
	}
	// First-seen order is kept; the repeated entry reports the median.
	hot := rep.Benchmarks[0]
	if hot.Name != "BenchmarkHot" || hot.NsPerOp != 20.0 || hot.Samples != 3 {
		t.Errorf("median entry = %+v, want 20 ns/op over 3 samples", hot)
	}
	other := rep.Benchmarks[1]
	if other.Name != "BenchmarkOther" || other.Samples != 0 {
		t.Errorf("single entry = %+v, want no samples field", other)
	}
}

func TestApplyBaseline(t *testing.T) {
	base := t.TempDir() + "/base.json"
	if err := writeFile(base, `{"benchmarks":[{"name":"BenchmarkHot","ns_per_op":40.0}]}`); err != nil {
		t.Fatal(err)
	}
	rep := &Report{Benchmarks: []Result{
		{Name: "BenchmarkHot", NsPerOp: 10.0},
		{Name: "BenchmarkNew", NsPerOp: 5.0},
	}}
	if err := applyBaseline(rep, base); err != nil {
		t.Fatal(err)
	}
	hot := rep.Benchmarks[0]
	if hot.BaselineNsPerOp != 40.0 || hot.Speedup != 4.0 {
		t.Errorf("baselined entry = %+v, want before=40 speedup=4", hot)
	}
	if rep.Benchmarks[1].BaselineNsPerOp != 0 {
		t.Errorf("benchmark absent from the baseline gained a comparison: %+v", rep.Benchmarks[1])
	}
	if err := applyBaseline(rep, t.TempDir()+"/missing.json"); err == nil {
		t.Error("missing baseline file must error")
	}
}

func TestParseBenchEmpty(t *testing.T) {
	rep, err := parseBench(strings.NewReader("PASS\nok rtseed 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from non-benchmark input", len(rep.Benchmarks))
	}
}

func TestPointLabel(t *testing.T) {
	for path, want := range map[string]string{
		"results/BENCH_PR6.json": "PR6",
		"BENCH_PR8.json":         "PR8",
		"results/other.json":     "other",
	} {
		if got := pointLabel(path); got != want {
			t.Errorf("pointLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestBuildTrajectory(t *testing.T) {
	dir := t.TempDir()
	pr3 := dir + "/BENCH_PR3.json"
	pr6 := dir + "/BENCH_PR6.json"
	if err := writeFile(pr3, `{"benchmarks":[
		{"name":"BenchmarkHot","ns_per_op":40.0},
		{"name":"BenchmarkGone","ns_per_op":9.0}]}`); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(pr6, `{"benchmarks":[
		{"name":"BenchmarkHot","ns_per_op":10.0},
		{"name":"BenchmarkNew","ns_per_op":5.0}]}`); err != nil {
		t.Fatal(err)
	}
	traj, err := buildTrajectory([]string{pr3, pr6})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(traj.Points), 2; got != want || traj.Points[0] != "PR3" || traj.Points[1] != "PR6" {
		t.Fatalf("points = %v", traj.Points)
	}
	if got, want := len(traj.Benchmarks), 3; got != want {
		t.Fatalf("merged %d benchmarks, want %d", got, want)
	}
	hot := traj.Benchmarks[0]
	if hot.Name != "BenchmarkHot" || len(hot.Series) != 2 || hot.Delta != 0.25 {
		t.Errorf("full-history entry = %+v, want 40→10 delta 0.25", hot)
	}
	// A benchmark present at only one point keeps its single-point series
	// and reports no delta.
	gone := traj.Benchmarks[1]
	if gone.Name != "BenchmarkGone" || len(gone.Series) != 1 || gone.Delta != 0 {
		t.Errorf("retired entry = %+v", gone)
	}
	if traj.Benchmarks[2].Name != "BenchmarkNew" || traj.Benchmarks[2].Series[0].Point != "PR6" {
		t.Errorf("late entry = %+v", traj.Benchmarks[2])
	}

	if _, err := buildTrajectory([]string{dir + "/missing.json"}); err == nil {
		t.Error("missing report file must error")
	}
	bad := dir + "/BENCH_BAD.json"
	if err := writeFile(bad, "not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := buildTrajectory([]string{bad}); err == nil {
		t.Error("malformed report file must error")
	}
}

// writeFile is a test shorthand for dropping fixture files.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
