// Command rtseed-trade runs the paper's motivating application end to end:
// a real-time trading task on the RT-Seed middleware over the simulated
// Xeon Phi. The mandatory part ingests a synthetic EUR/USD tick each second,
// the parallel optional parts run Bollinger Bands and the rest of the
// technical battery plus a fundamental analyzer, and the wind-up part makes
// a bid/ask/wait decision against a simulated broker.
//
// Usage:
//
//	rtseed-trade [-ticks N] [-policy one|two|all] [-load none|cpu|cpumem]
//	             [-odscale F] [-trace FILE] [-replay FILE.rtk] [-symbol N]
//
// -trace records every kernel scheduling event and middleware part boundary
// of the run into a binary trace file for rtseed-trace.
//
// -replay trades against the market ticks recorded in a .rtk workload trace
// (rtseed-workload gen) instead of the synthetic generator, looping the
// recording so all -ticks jobs complete; -symbol restricts the recording to
// one symbol's quotes.
//
// -odscale scales the optional-part execution time relative to the optional
// deadline: >1 means the analyses always overrun and are terminated
// (imprecise but timely), <1 means they complete (precise).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/overhead"
	"rtseed/internal/report"
	"rtseed/internal/task"
	"rtseed/internal/trace"
	"rtseed/internal/trading"
	"rtseed/internal/workload"
)

func main() {
	ticks := flag.Int("ticks", 300, "number of 1s ticks (jobs) to trade")
	policyName := flag.String("policy", "one", "assignment policy: one, two, all")
	loadName := flag.String("load", "none", "background load: none, cpu, cpumem")
	odScale := flag.Float64("odscale", 2.0, "optional execution time as a multiple of the optional deadline headroom")
	seed := flag.Uint64("seed", 0xfeed, "feed seed")
	sweep := flag.Bool("sweep", false, "sweep the number of parallel optional parts and report the QoS/latency trade-off instead")
	feedAddr := flag.String("feed", "", "dial a rtseed-feedd quote server instead of the in-process generator")
	tracePath := flag.String("trace", "", "write a binary trace of the run to this file (analyze with rtseed-trace)")
	replayPath := flag.String("replay", "", "trade the ticks recorded in this .rtk workload trace, looping the recording")
	symbol := flag.Int("symbol", -1, "with -replay, trade only this symbol's ticks (-1: all)")
	flag.Parse()
	var err error
	switch {
	case *sweep:
		err = runSweep(*policyName, *loadName)
	case *replayPath != "" && *feedAddr != "":
		err = fmt.Errorf("-replay and -feed are mutually exclusive")
	default:
		err = run(*ticks, *policyName, *loadName, *feedAddr, *replayPath, *symbol, *tracePath, *odScale, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-trade:", err)
		os.Exit(1)
	}
}

// runSweep prints the conclusion's trade-off: useful analysis work versus
// decision latency as the number of parallel optional parts grows.
func runSweep(policyName, loadName string) error {
	pol, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	load, err := parseLoad(loadName)
	if err != nil {
		return err
	}
	points, err := overhead.QoSSweep(load, pol, nil, 20, 0xfeed, 0)
	if err != nil {
		return err
	}
	fmt.Printf("QoS/latency trade-off (%v, %v): pick np where marginal work still beats the added latency\n", load, pol)
	tbl := report.NewTable("np", "useful analysis work/job", "decision latency", "misses")
	for _, p := range points {
		tbl.AddRow(p.NumParts, p.UsefulWork, p.DecisionLatency, p.DeadlineMisses)
	}
	fmt.Println(tbl)
	return nil
}

// localSource adapts the in-process generator to trading.Source.
type localSource struct{ f *trading.Feed }

// NextTick implements trading.Source.
func (s localSource) NextTick() (trading.Tick, error) { return s.f.Next(), nil }

func parsePolicy(s string) (assign.Policy, error) {
	switch s {
	case "one":
		return assign.OneByOne, nil
	case "two":
		return assign.TwoByTwo, nil
	case "all":
		return assign.AllByAll, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseLoad(s string) (machine.Load, error) {
	switch s {
	case "none":
		return machine.NoLoad, nil
	case "cpu":
		return machine.CPULoad, nil
	case "cpumem":
		return machine.CPUMemoryLoad, nil
	default:
		return 0, fmt.Errorf("unknown load %q", s)
	}
}

func run(ticks int, policyName, loadName, feedAddr, replayPath string, symbol int, tracePath string, odScale float64, seed uint64) error {
	pol, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	load, err := parseLoad(loadName)
	if err != nil {
		return err
	}

	// The paper's task: T = 1s (one OANDA tick per second), m = w = 250ms.
	const (
		period   = time.Second
		mPart    = 250 * time.Millisecond
		wBudget  = 250 * time.Millisecond
		wExec    = 150 * time.Millisecond
		od       = period - wBudget // Theorem 2 of [5], n = 1
		basePrio = 90
	)

	var source trading.Source
	switch {
	case replayPath != "":
		feed, err := replaySource(replayPath, symbol)
		if err != nil {
			return err
		}
		source = feed
	case feedAddr != "":
		nf, err := trading.DialFeed(feedAddr)
		if err != nil {
			return err
		}
		defer nf.Close()
		source = nf
	default:
		feed, err := trading.NewFeed(trading.FeedConfig{Seed: seed, Volatility: 0.002})
		if err != nil {
			return err
		}
		source = localSource{feed}
	}
	indicators := append(trading.DefaultTechnical(),
		trading.Fundamental{Series: trading.SyntheticMacro(ticks/10+2, 10, seed+1), Trend: 5})
	pipe, err := trading.NewPipelineFrom(source, indicators, trading.NewEngine(), trading.NewBroker(), 0)
	if err != nil {
		return err
	}

	// Optional-part execution time relative to the OD headroom after the
	// mandatory part (od - m = 500ms of optional execution window).
	optExec := time.Duration(odScale * float64(od-mPart))

	mach, err := machine.New(machine.XeonPhi3120A(), load, machine.DefaultCostModel(), seed)
	if err != nil {
		return err
	}
	k := kernel.New(engine.New(), mach)
	var traceFile *os.File
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			return err
		}
		k.SetTrace(trace.New(trace.Config{
			CPUs: mach.Topology().NumHWThreads(),
			Sink: traceFile,
		}))
	}
	np := pipe.NumOptional()
	cpus, err := assign.HWThreads(mach.Topology(), pol, np)
	if err != nil {
		return err
	}
	p, err := core.NewProcess(k, core.Config{
		Task:              task.Uniform("trader", mPart, wExec, optExec, np, period),
		MandatoryPriority: basePrio,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  od,
		Jobs:              ticks,
		App: core.App{
			OnMandatory: pipe.OnMandatory,
			OnOptional:  pipe.OnOptional,
			OnWindup:    pipe.OnWindup,
		},
	})
	if err != nil {
		return err
	}
	p.Start()
	k.Run()
	if traceFile != nil {
		if err := k.Trace().Close(k.ThreadInfos()); err != nil {
			traceFile.Close()
			return err
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
	}

	st := p.Stats()
	fmt.Printf("RT-Seed trading run: %d jobs, np=%d (%v), %v, optional exec %v vs OD %v\n",
		st.Jobs, np, pol, load, optExec, od)
	tbl := report.NewTable("metric", "value")
	tbl.AddRow("deadline misses", st.DeadlineMisses)
	tbl.AddRow("mean QoS (part progress)", st.MeanQoS)
	tbl.AddRow("parts completed", st.CompletedParts)
	tbl.AddRow("parts terminated", st.TerminatedParts)
	tbl.AddRow("parts discarded", st.DiscardedParts)
	tbl.AddRow("decision QoS", pipe.MeanQoS())
	met := pipe.Metrics()
	tbl.AddRow("trades", met.Trades)
	tbl.AddRow("waits", met.Waits)
	tbl.AddRow("position", fmt.Sprintf("%.0f", pipe.Broker().Position()))
	tbl.AddRow("mark-to-mid PnL", fmt.Sprintf("%+.5f", met.FinalPnL))
	tbl.AddRow("max drawdown", fmt.Sprintf("%.5f", met.MaxDrawdown))
	tbl.AddRow("per-tick Sharpe", fmt.Sprintf("%.3f", met.Sharpe))
	tbl.AddRow("hit rate", fmt.Sprintf("%.2f", met.HitRate))
	tbl.AddRow("feed errors", pipe.SourceErrors())
	fmt.Println(tbl)
	return nil
}

// replaySource loads the tick section of a .rtk workload trace as a looping
// replay feed, optionally restricted to one symbol. Looping guarantees the
// pipeline never starves: every configured job gets a quote.
func replaySource(path string, symbol int) (*trading.ReplayFeed, error) {
	tr, err := workload.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ticks := make([]trading.Tick, 0, len(tr.Ticks))
	for _, t := range tr.Ticks {
		if symbol >= 0 && t.Symbol != uint32(symbol) {
			continue
		}
		ticks = append(ticks, trading.Tick{Seq: len(ticks), At: t.At, Bid: t.Bid, Ask: t.Ask})
	}
	if len(ticks) == 0 {
		return nil, fmt.Errorf("%s: no ticks for symbol %d", path, symbol)
	}
	feed, err := trading.NewReplayFeed(ticks)
	if err != nil {
		return nil, err
	}
	feed.Loop = true
	return feed, nil
}
