package main

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"rtseed/internal/trace"
	"rtseed/internal/trading"
	"rtseed/internal/workload"
)

func TestRunShortTrade(t *testing.T) {
	if err := run(20, "one", "none", "", "", -1, "", 2.0, 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunPreciseMode(t *testing.T) {
	if err := run(10, "all", "cpu", "", "", -1, "", 0.5, 7); err != nil {
		t.Fatal(err)
	}
}

// -trace captures the trading run: the decoded file's per-task job count
// matches the tick count and nothing is lost in file-backed mode.
func TestRunWritesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trade.rtt")
	const ticks = 12
	if err := run(ticks, "one", "none", "", "", -1, path, 2.0, 7); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.TotalLost() != 0 {
		t.Fatalf("file-backed trace lost %d records", decoded.TotalLost())
	}
	a := trace.Analyze(decoded)
	s := a.TaskByName("trader")
	if s == nil {
		t.Fatalf("trader task missing: %+v", a.Tasks)
	}
	if s.Jobs != ticks {
		t.Fatalf("trace shows %d jobs, ran %d ticks", s.Jobs, ticks)
	}
	if s.Terminated == 0 {
		t.Fatal("odscale 2.0 must terminate optional parts")
	}
}

func TestRunSweep(t *testing.T) {
	if err := runSweep("two", "cpumem"); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run(10, "bogus", "none", "", "", -1, "", 1, 7); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run(10, "one", "bogus", "", "", -1, "", 1, 7); err == nil {
		t.Fatal("bad load accepted")
	}
}

// End-to-end over TCP: a feed daemon serves ticks and the trading run
// ingests them through the middleware's mandatory parts.
func TestRunAgainstNetworkFeed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	feed, err := trading.NewFeed(trading.FeedConfig{Seed: 7, Volatility: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	srv := trading.NewFeedServer(feed)
	go srv.Serve(ln, 1000)
	defer srv.Close()
	if err := run(15, "one", "none", ln.Addr().String(), "", -1, "", 2.0, 7); err != nil {
		t.Fatal(err)
	}
}

// TestRunReplayTrace trades against a recorded .rtk market: the looping
// replay must feed every job, and a missing file or absent symbol must fail.
func TestRunReplayTrace(t *testing.T) {
	spec, ok := workload.BuiltinSpec("flash-crash")
	if !ok {
		t.Fatal("flash-crash builtin missing")
	}
	src, err := workload.Compile(spec, workload.CompileConfig{
		Clients: 8, Seed: 3, Horizon: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "market.rtk")
	if err := workload.WriteFile(path, src.Trace(40)); err != nil {
		t.Fatal(err)
	}
	// 25 jobs > 40 recorded ticks per symbol once filtered: looping covers it.
	if err := run(25, "one", "none", "", path, -1, "", 2.0, 7); err != nil {
		t.Fatal(err)
	}
	if err := run(5, "one", "none", "", "/nonexistent.rtk", -1, "", 2.0, 7); err == nil {
		t.Fatal("missing replay file accepted")
	}
	if err := run(5, "one", "none", "", path, 1<<20, "", 2.0, 7); err == nil {
		t.Fatal("absent symbol accepted")
	}
}
