package main

import (
	"net"
	"testing"

	"rtseed/internal/trading"
)

func TestRunShortTrade(t *testing.T) {
	if err := run(20, "one", "none", "", 2.0, 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunPreciseMode(t *testing.T) {
	if err := run(10, "all", "cpu", "", 0.5, 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweep(t *testing.T) {
	if err := runSweep("two", "cpumem"); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run(10, "bogus", "none", "", 1, 7); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run(10, "one", "bogus", "", 1, 7); err == nil {
		t.Fatal("bad load accepted")
	}
}

// End-to-end over TCP: a feed daemon serves ticks and the trading run
// ingests them through the middleware's mandatory parts.
func TestRunAgainstNetworkFeed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	feed, err := trading.NewFeed(trading.FeedConfig{Seed: 7, Volatility: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	srv := trading.NewFeedServer(feed)
	go srv.Serve(ln, 1000)
	defer srv.Close()
	if err := run(15, "one", "none", ln.Addr().String(), 2.0, 7); err != nil {
		t.Fatal(err)
	}
}
