package main

import (
	"bufio"
	"encoding/json"
	"net"
	"path/filepath"
	"testing"
	"time"

	"rtseed/internal/trading"
	"rtseed/internal/workload"
)

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run("256.256.256.256:1", 1, 1, 0.001, "", -1); err == nil {
		t.Fatal("bad listen address accepted")
	}
	if err := run("127.0.0.1:0", 1, 1, -1, "", -1); err == nil {
		t.Fatal("negative volatility accepted")
	}
	if err := run("127.0.0.1:0", 1, 1, 0.001, "/nonexistent/trace.rtk", -1); err == nil {
		t.Fatal("missing replay file accepted")
	}
}

// writeTestTrace records a small flash-crash trace and returns its path plus
// the decoded ticks for comparison.
func writeTestTrace(t *testing.T) (string, []workload.Tick) {
	t.Helper()
	spec, ok := workload.BuiltinSpec("flash-crash")
	if !ok {
		t.Fatal("flash-crash builtin missing")
	}
	src, err := workload.Compile(spec, workload.CompileConfig{
		Clients: 8, Seed: 3, Horizon: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := src.Trace(50)
	path := filepath.Join(t.TempDir(), "trace.rtk")
	if err := workload.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path, tr.Ticks
}

// TestReplaySource checks the .rtk conversion: full stream, symbol filter,
// and the no-ticks error path.
func TestReplaySource(t *testing.T) {
	path, ticks := writeTestTrace(t)
	feed, err := replaySource(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	if feed.Len() != len(ticks) {
		t.Fatalf("replay holds %d ticks, trace has %d", feed.Len(), len(ticks))
	}
	first, err := feed.NextTick()
	if err != nil {
		t.Fatal(err)
	}
	if first.At != ticks[0].At || first.Bid != ticks[0].Bid || first.Ask != ticks[0].Ask {
		t.Errorf("first tick %+v does not match trace %+v", first, ticks[0])
	}

	sym := int(ticks[0].Symbol)
	want := 0
	for _, tk := range ticks {
		if int(tk.Symbol) == sym {
			want++
		}
	}
	filtered, err := replaySource(path, sym)
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Len() != want {
		t.Errorf("symbol %d filter kept %d ticks, want %d", sym, filtered.Len(), want)
	}

	if _, err := replaySource(path, 1<<20); err == nil {
		t.Error("absent symbol accepted")
	}
}

// TestServeReplay serves a recorded trace over TCP and checks a client reads
// the trace's quotes back.
func TestServeReplay(t *testing.T) {
	path, ticks := writeTestTrace(t)
	feed, err := replaySource(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := trading.NewFeedServer(feed)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln, 5)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for i := 0; i < 5; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d ticks: %v", i, sc.Err())
		}
		var tk trading.Tick
		if err := json.Unmarshal(sc.Bytes(), &tk); err != nil {
			t.Fatal(err)
		}
		if tk.Bid != ticks[i].Bid || tk.Ask != ticks[i].Ask {
			t.Errorf("tick %d: got %+v, trace has %+v", i, tk, ticks[i])
		}
	}
	ln.Close()
	<-done
}
