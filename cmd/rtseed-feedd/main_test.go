package main

import "testing"

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run("256.256.256.256:1", 1, 1, 0.001); err == nil {
		t.Fatal("bad listen address accepted")
	}
	if err := run("127.0.0.1:0", 1, 1, -1); err == nil {
		t.Fatal("negative volatility accepted")
	}
}
