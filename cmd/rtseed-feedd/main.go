// Command rtseed-feedd serves an exchange-rate stream over TCP as
// newline-delimited JSON — the "stock company" endpoint of the paper's
// motivating scenario (§II-A). Pair it with `rtseed-trade -feed ADDR`.
//
// Usage:
//
//	rtseed-feedd [-listen 127.0.0.1:7070] [-ticks N] [-seed S] [-vol F]
//	             [-replay FILE.rtk] [-symbol N]
//
// By default ticks come from the in-process synthetic generator. -replay
// serves the market ticks recorded in a .rtk workload trace
// (rtseed-workload gen) instead; -symbol restricts the stream to one
// symbol's quotes (default: all, looping when exhausted).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"rtseed/internal/trading"
	"rtseed/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to listen on")
	ticks := flag.Int("ticks", 100000, "ticks to serve per client")
	seed := flag.Uint64("seed", 0xfeed, "generator seed")
	vol := flag.Float64("vol", 0.002, "per-tick volatility")
	replay := flag.String("replay", "", "serve the ticks recorded in this .rtk workload trace instead of generating")
	symbol := flag.Int("symbol", -1, "with -replay, serve only this symbol's ticks (-1: all)")
	flag.Parse()
	if err := run(*listen, *ticks, *seed, *vol, *replay, *symbol); err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-feedd:", err)
		os.Exit(1)
	}
}

func run(listen string, ticks int, seed uint64, vol float64, replay string, symbol int) error {
	var src trading.Source
	if replay != "" {
		feed, err := replaySource(replay, symbol)
		if err != nil {
			return err
		}
		src = feed
	} else {
		feed, err := trading.NewFeed(trading.FeedConfig{Seed: seed, Volatility: vol})
		if err != nil {
			return err
		}
		src = feed
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("rtseed-feedd: serving %d ticks/client on %s\n", ticks, ln.Addr())
	srv := trading.NewFeedServer(src)
	return srv.Serve(ln, ticks)
}

// replaySource loads the tick section of a .rtk workload trace as a looping
// replay feed, optionally restricted to one symbol.
func replaySource(path string, symbol int) (*trading.ReplayFeed, error) {
	tr, err := workload.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ticks := make([]trading.Tick, 0, len(tr.Ticks))
	for _, t := range tr.Ticks {
		if symbol >= 0 && t.Symbol != uint32(symbol) {
			continue
		}
		ticks = append(ticks, trading.Tick{Seq: len(ticks), At: t.At, Bid: t.Bid, Ask: t.Ask})
	}
	if len(ticks) == 0 {
		return nil, fmt.Errorf("%s: no ticks for symbol %d", path, symbol)
	}
	feed, err := trading.NewReplayFeed(ticks)
	if err != nil {
		return nil, err
	}
	feed.Loop = true
	return feed, nil
}
