// Command rtseed-feedd serves the synthetic exchange-rate stream over TCP
// as newline-delimited JSON — the "stock company" endpoint of the paper's
// motivating scenario (§II-A). Pair it with `rtseed-trade -feed ADDR`.
//
// Usage:
//
//	rtseed-feedd [-listen 127.0.0.1:7070] [-ticks N] [-seed S] [-vol F]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"rtseed/internal/trading"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to listen on")
	ticks := flag.Int("ticks", 100000, "ticks to serve per client")
	seed := flag.Uint64("seed", 0xfeed, "generator seed")
	vol := flag.Float64("vol", 0.002, "per-tick volatility")
	flag.Parse()
	if err := run(*listen, *ticks, *seed, *vol); err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-feedd:", err)
		os.Exit(1)
	}
}

func run(listen string, ticks int, seed uint64, vol float64) error {
	feed, err := trading.NewFeed(trading.FeedConfig{Seed: seed, Volatility: vol})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("rtseed-feedd: serving %d ticks/client on %s\n", ticks, ln.Addr())
	srv := trading.NewFeedServer(feed)
	return srv.Serve(ln, ticks)
}
