// Command rtseed-repro regenerates the full reproduction in one run: every
// figure and table of the paper's evaluation plus the repository's
// extension experiments, written as a markdown report (stdout or -o FILE).
//
// Usage:
//
//	rtseed-repro [-jobs N] [-quick] [-o report.md] [-workers N] [-trace FILE]
//
// -trace additionally records a fixed P-RMWP scenario through the tracing
// subsystem and writes the binary trace to FILE for rtseed-trace; the bytes
// are a pure function of the scenario, identical for any -workers value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rtseed/internal/analysis"
	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/overhead"
	"rtseed/internal/partition"
	"rtseed/internal/prof"
	"rtseed/internal/report"
	"rtseed/internal/sched"
	"rtseed/internal/sweep"
	"rtseed/internal/task"
	"rtseed/internal/trace"
)

// now is the wall-clock source for the report footer. Everything above the
// footer is a deterministic function of the flags; tests substitute a fixed
// clock here so even the footer is reproducible.
var now = time.Now

// options is the parsed command line.
type options struct {
	jobs       int
	quick      bool
	out        string
	workers    int
	cpuprofile string
	memprofile string
	trace      string
}

// parseFlags registers the command's flags on fs, parses args, and validates
// the result. The flag set is injected so tests can parse without touching
// the process-global flag.CommandLine.
func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.IntVar(&o.jobs, "jobs", 100, "jobs per overhead measurement")
	fs.BoolVar(&o.quick, "quick", false, "reduced sweeps for a fast run")
	fs.StringVar(&o.out, "o", "", "write the report to this file (default stdout)")
	fs.IntVar(&o.workers, "workers", sweep.DefaultWorkers(), "sweep cells simulated in parallel (the report is identical for any value)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile taken after the run to this file")
	fs.StringVar(&o.trace, "trace", "", "write a binary trace of a fixed P-RMWP scenario to this file (analyze with rtseed-trace)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := sweep.ValidateWorkers(o.workers); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	o, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-repro:", err)
		os.Exit(2)
	}
	w := io.Writer(os.Stdout)
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtseed-repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	stop, err := prof.Start(o.cpuprofile, o.memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-repro:", err)
		os.Exit(1)
	}
	err = run(w, o.jobs, o.quick, o.workers)
	if err == nil && o.trace != "" {
		err = writeTraceFile(o.trace)
	}
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-repro:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, jobs int, quick bool, workers int) error {
	started := now()
	fmt.Fprintf(w, "# RT-Seed reproduction report\n\n")
	fmt.Fprintf(w, "Simulated Xeon Phi 3120A (57 cores x 4 HW threads); %d jobs per measurement.\n\n", jobs)

	if err := sectionFig8(w); err != nil {
		return err
	}
	if err := sectionFig3(w); err != nil {
		return err
	}
	if err := sectionOverheads(w, jobs, quick, workers); err != nil {
		return err
	}
	if err := sectionTableI(w); err != nil {
		return err
	}
	if err := sectionAcceptance(w, quick, workers); err != nil {
		return err
	}
	writeFooter(w, now().Sub(started))
	return nil
}

// writeTraceFile runs the traced scenario — the two-task P-RMWP set whose
// cross-task coupling produces deadline misses, so every analyzer section
// has material — and writes the binary trace to path. The scenario is a
// single-threaded simulation with zero cost jitter: its trace bytes are a
// pure function of this code, independent of -workers and of wall clock.
func writeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	model := machine.DefaultCostModel()
	model.JitterFrac = 0
	mach, err := machine.New(machine.Topology{Cores: 8, ThreadsPerCore: 4}, machine.NoLoad, model, 3)
	if err != nil {
		f.Close()
		return err
	}
	k := kernel.New(engine.New(), mach)
	tr := trace.New(trace.Config{
		CPUs:     mach.Topology().NumHWThreads(),
		Capacity: 1024,
		Sink:     f,
	})
	k.SetTrace(tr)
	set := task.MustNewSet(
		task.Uniform("fast", 5*time.Millisecond, 5*time.Millisecond, 500*time.Millisecond, 2, 50*time.Millisecond),
		task.Uniform("slow", 10*time.Millisecond, 10*time.Millisecond, 500*time.Millisecond, 2, 100*time.Millisecond),
	)
	sys, err := sched.NewPRMWP(k, sched.PRMWPConfig{
		Set:            set,
		Horizon:        300 * time.Millisecond,
		Policy:         assign.OneByOne,
		Heuristic:      partition.FirstFit,
		OverheadMargin: 3 * time.Millisecond,
	})
	if err != nil {
		f.Close()
		return err
	}
	sys.Start()
	k.Run()
	if err := tr.Close(k.ThreadInfos()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFooter appends the elapsed-time trailer to the report.
func writeFooter(w io.Writer, elapsed time.Duration) {
	fmt.Fprintf(w, "\nGenerated in %v.\n", elapsed.Round(time.Millisecond))
}

func sectionFig8(w io.Writer) error {
	fmt.Fprintf(w, "## Fig. 8 — assignment policies (np=171)\n\n```\n")
	topo := machine.XeonPhi3120A()
	tbl := report.NewTable("policy", "cores used", "occupancy")
	for _, pol := range assign.Policies() {
		hws, err := assign.HWThreads(topo, pol, 171)
		if err != nil {
			return err
		}
		hist := assign.CoreHistogram(topo, hws)
		runs := ""
		for i := 0; i < len(hist); {
			j := i
			for j < len(hist) && hist[j] == hist[i] {
				j++
			}
			runs += fmt.Sprintf("%dx%d ", hist[i], j-i)
			i = j
		}
		tbl.AddRow(pol.String(), assign.DistinctCores(topo, hws), runs)
	}
	fmt.Fprintf(w, "%s```\n\n", tbl)
	return nil
}

func sectionFig3(w io.Writer) error {
	fmt.Fprintf(w, "## Fig. 3 — general vs. semi-fixed-priority\n\n```\n")
	// General: one m+w block.
	mach := machine.MustNew(machine.XeonPhi3120A(), machine.NoLoad, machine.DefaultCostModel(), 3)
	k := kernel.New(engine.New(), mach)
	tk := task.Uniform("tau1", 250*time.Millisecond, 150*time.Millisecond, 2*time.Second, 1, time.Second)
	cpus, err := assign.HWThreads(mach.Topology(), assign.OneByOne, 1)
	if err != nil {
		return err
	}
	p, err := core.NewProcess(k, core.Config{
		Task: tk, MandatoryPriority: 90, MandatoryCPU: 0,
		OptionalCPUs: cpus, OptionalDeadline: 750 * time.Millisecond, Jobs: 1,
	})
	if err != nil {
		return err
	}
	p.Start()
	k.Run()
	rec := p.Records()[0]
	fmt.Fprintf(w, "semi-fixed: mandatory [%v..%v], optional until OD=750ms, wind-up [%v..%v]\n",
		rec.MandatoryStart, rec.MandatoryStart+tk.Mandatory, rec.WindupStart, rec.Finish)
	fmt.Fprintf(w, "general:    one m+w block [release..m+w] — see cmd/rtseed-sim -sched general -trace\n")
	fmt.Fprintf(w, "```\n\n")
	return nil
}

func sectionOverheads(w io.Writer, jobs int, quick bool, workers int) error {
	cfg := overhead.SweepConfig{Jobs: jobs, Workers: workers}
	if quick {
		cfg.NumParts = []int{4, 57, 228}
		cfg.Jobs = 10
	}
	figs, err := overhead.SweepAll(cfg)
	if err != nil {
		return err
	}
	for _, load := range machine.Loads() {
		for _, kind := range overhead.Kinds() {
			fd := overhead.ByKindLoad(figs, kind, load)
			fmt.Fprintf(w, "## Figure %d (%s) — %s\n\n```\n", kind.Figure(), kind, load)
			tbl := report.NewTable("np", "One by One", "Two by Two", "All by All")
			for i, pt := range fd.Series[0].Points {
				row := []any{pt.NumParts}
				for _, s := range fd.Series {
					row = append(row, s.Points[i].Mean)
				}
				tbl.AddRow(row...)
			}
			fmt.Fprintf(w, "%s```\n\n", tbl)
		}
	}
	return nil
}

func sectionTableI(w io.Writer) error {
	fmt.Fprintf(w, "## Table I — termination mechanisms\n\n```\n")
	tbl := report.NewTable("implementation", "any-time", "mask restore", "behaviour over 4 jobs")
	for _, mech := range []core.Termination{
		core.SigjmpTermination{},
		core.PeriodicCheckTermination{Period: 7 * time.Millisecond},
		core.TryCatchTermination{},
	} {
		mach := machine.MustNew(machine.Topology{Cores: 8, ThreadsPerCore: 4}, machine.NoLoad, machine.DefaultCostModel(), 3)
		k := kernel.New(engine.New(), mach)
		tk := task.Uniform("t", 20*time.Millisecond, 20*time.Millisecond, time.Second, 2, 100*time.Millisecond)
		cpus, err := assign.HWThreads(mach.Topology(), assign.OneByOne, 2)
		if err != nil {
			return err
		}
		p, err := core.NewProcess(k, core.Config{
			Task: tk, MandatoryPriority: 90, MandatoryCPU: 0,
			OptionalCPUs: cpus, OptionalDeadline: 70 * time.Millisecond,
			Jobs: 4, Termination: mech,
		})
		if err != nil {
			return err
		}
		p.Start()
		k.RunUntil(engine.At(10 * time.Second))
		st := p.Stats()
		behaviour := fmt.Sprintf("%d terminated, %d completed, %d discarded, %d misses",
			st.TerminatedParts, st.CompletedParts, st.DiscardedParts, st.DeadlineMisses)
		tbl.AddRow(mech.Name(), mech.AnyTime(), mech.RestoresSignalMask(), behaviour)
	}
	fmt.Fprintf(w, "%s```\n\n", tbl)
	return nil
}

func sectionAcceptance(w io.Writer, quick bool, workers int) error {
	sets := 200
	if quick {
		sets = 40
	}
	points, err := analysis.AcceptanceRatio(analysis.AcceptanceConfig{
		N:            6,
		SetsPerPoint: sets,
		Utilizations: []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Seed:         0xacce,
		Workers:      workers,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Extension — acceptance ratio (the schedulability price of wind-up guarantees)\n\n```\n")
	tbl := report.NewTable("total U", "RMWP", "general RM", "LL bound")
	for _, p := range points {
		tbl.AddRow(fmt.Sprintf("%.1f", p.Utilization), p.RMWP, p.GeneralRM, p.LLBound)
	}
	fmt.Fprintf(w, "%s```\n", tbl)
	return nil
}
