package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 3, true, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# RT-Seed reproduction report",
		"Fig. 8", "Fig. 3",
		"Figure 10", "Figure 11", "Figure 12", "Figure 13",
		"Table I", "acceptance ratio",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
