package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"rtseed/internal/trace"
)

func testFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("rtseed-repro", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(testFlagSet(), nil)
	if err != nil {
		t.Fatalf("parseFlags(nil) = %v", err)
	}
	if want := runtime.GOMAXPROCS(0); o.workers != want {
		t.Errorf("default workers = %d, want GOMAXPROCS (%d)", o.workers, want)
	}
	if o.jobs != 100 || o.quick || o.out != "" {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestParseFlagsRejectsNonPositiveWorkers(t *testing.T) {
	for _, bad := range []string{"0", "-1", "-8"} {
		_, err := parseFlags(testFlagSet(), []string{"-workers", bad})
		if err == nil {
			t.Errorf("-workers %s: accepted, want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "GOMAXPROCS") {
			t.Errorf("-workers %s: error %q should point at the GOMAXPROCS default", bad, err)
		}
	}
}

func TestFooterUsesInjectedClock(t *testing.T) {
	orig := now
	defer func() { now = orig }()
	base := time.Unix(100, 0)
	ticks := []time.Time{base, base.Add(1500 * time.Millisecond)}
	now = func() time.Time {
		tm := ticks[0]
		if len(ticks) > 1 {
			ticks = ticks[1:]
		}
		return tm
	}
	started := now()
	var buf bytes.Buffer
	writeFooter(&buf, now().Sub(started))
	if got, want := buf.String(), "\nGenerated in 1.5s.\n"; got != want {
		t.Errorf("footer = %q, want %q", got, want)
	}
}

func TestRunQuickReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 3, true, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# RT-Seed reproduction report",
		"Fig. 8", "Fig. 3",
		"Figure 10", "Figure 11", "Figure 12", "Figure 13",
		"Table I", "acceptance ratio",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

// The binary trace is byte-identical across worker counts: the traced
// scenario is a single-threaded simulation, so -workers (which only
// parallelizes the report's sweeps) must not leak into the trace bytes.
func TestTraceBytesIdenticalAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 7, 8} {
		var report bytes.Buffer
		if err := run(&report, 3, true, workers); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "out.rtt")
		if err := writeTraceFile(path); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatal("empty trace file")
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: trace bytes differ from workers=1 (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
	// The trace itself decodes and carries the scenario's misses.
	decoded, err := trace.Decode(want)
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Analyze(decoded)
	if !a.NonEmpty() {
		t.Fatal("traced scenario yields an empty analysis")
	}
	if len(a.Misses) == 0 {
		t.Fatal("traced scenario should include deadline misses for the analyzer to attribute")
	}
}

func TestParseFlagsProfilePaths(t *testing.T) {
	o, err := parseFlags(testFlagSet(), []string{"-cpuprofile", "cpu.prof", "-memprofile", "mem.prof"})
	if err != nil {
		t.Fatalf("parseFlags = %v", err)
	}
	if o.cpuprofile != "cpu.prof" || o.memprofile != "mem.prof" {
		t.Errorf("profile paths = %q, %q; want cpu.prof, mem.prof", o.cpuprofile, o.memprofile)
	}
	if o, err = parseFlags(testFlagSet(), nil); err != nil || o.cpuprofile != "" || o.memprofile != "" {
		t.Errorf("profiling not off by default: %+v (err %v)", o, err)
	}
}
