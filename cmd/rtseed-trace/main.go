// Command rtseed-trace analyzes a binary trace file produced by the
// simulator's tracing subsystem (internal/trace): per-task response-time and
// release-latency histograms, deadline-miss attribution (which optional
// parts overran, which thread preempted the task), per-CPU utilization
// timelines, and a Perfetto-loadable Chrome trace_event export.
//
// Usage:
//
//	rtseed-trace [-hist] [-misses] [-util N] [-perfetto FILE] [-check] FILE
//
// Produce a trace with `rtseed-repro -quick -trace out.rtt` or
// `rtseed-trade -trace out.rtt`, then `rtseed-trace -perfetto out.json
// out.rtt` and load out.json at https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rtseed/internal/report"
	"rtseed/internal/trace"
)

// options is the parsed command line.
type options struct {
	hist     bool
	misses   bool
	util     int
	perfetto string
	check    bool
	file     string
}

// parseFlags registers the command's flags on fs, parses args, and validates
// the result. The flag set is injected so tests can parse without touching
// the process-global flag.CommandLine.
func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.BoolVar(&o.hist, "hist", false, "print per-task response-time and release-latency histograms")
	fs.BoolVar(&o.misses, "misses", false, "print per-miss attribution (overrunning parts, preemptors)")
	fs.IntVar(&o.util, "util", 0, "print per-CPU utilization over N time buckets")
	fs.StringVar(&o.perfetto, "perfetto", "", "also write a Chrome trace_event JSON file (Perfetto-loadable)")
	fs.BoolVar(&o.check, "check", false, "exit nonzero unless the trace yields a non-empty analysis")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.util < 0 {
		return nil, fmt.Errorf("-util must be non-negative, got %d", o.util)
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one trace file, got %d arguments", fs.NArg())
	}
	o.file = fs.Arg(0)
	return o, nil
}

func main() {
	o, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-trace:", err)
		os.Exit(2)
	}
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-trace:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o *options) error {
	t, err := trace.ReadFile(o.file)
	if err != nil {
		return err
	}
	a := trace.Analyze(t)
	if o.check && !a.NonEmpty() {
		return fmt.Errorf("%s: trace yields an empty analysis (no completed jobs)", o.file)
	}

	writeSummary(w, t, a)
	if o.hist {
		writeHistograms(w, a)
	}
	if o.misses {
		writeMisses(w, a)
	}
	if o.util > 0 {
		writeUtilization(w, a, o.util)
	}
	if o.perfetto != "" {
		f, err := os.Create(o.perfetto)
		if err != nil {
			return err
		}
		if err := trace.WritePerfetto(f, t); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s (load at https://ui.perfetto.dev)\n", o.perfetto)
	}
	return nil
}

// writeSummary prints the per-task table and the trace-level counters.
func writeSummary(w io.Writer, t *trace.Trace, a *trace.Analysis) {
	fmt.Fprintf(w, "trace: %d records, %d threads, span %v", len(t.Records), len(t.Threads), a.Span)
	if a.Lost > 0 {
		fmt.Fprintf(w, ", %d records LOST (counts are lower bounds)", a.Lost)
	}
	fmt.Fprintln(w)
	tbl := report.NewTable("task", "jobs", "completed", "terminated", "discarded", "misses", "mean resp", "max resp")
	for _, s := range a.Tasks {
		tbl.AddRow(s.Name, s.Jobs, s.Completed, s.Terminated, s.Discarded, s.Misses,
			s.Response.Mean(), s.Response.Max)
	}
	fmt.Fprint(w, tbl)
}

func writeHistograms(w io.Writer, a *trace.Analysis) {
	for _, s := range a.Tasks {
		if s.Response.N > 0 {
			fmt.Fprintf(w, "\n%s response time (finish - release), %d jobs:\n", s.Name, s.Response.N)
			var b strings.Builder
			s.Response.Format(&b, "  ")
			fmt.Fprint(w, b.String())
		}
		if s.ReleaseLat.N > 0 {
			fmt.Fprintf(w, "%s release latency (mandatory start - release):\n", s.Name)
			var b strings.Builder
			s.ReleaseLat.Format(&b, "  ")
			fmt.Fprint(w, b.String())
		}
	}
}

func writeMisses(w io.Writer, a *trace.Analysis) {
	if len(a.Misses) == 0 {
		fmt.Fprintf(w, "\nno deadline misses\n")
		return
	}
	fmt.Fprintf(w, "\ndeadline misses:\n")
	for _, m := range a.Misses {
		fmt.Fprintf(w, "  %s job %d at %v: late by %v", m.Task, m.Job, m.At, m.Lateness)
		if len(m.OverranParts) > 0 {
			fmt.Fprintf(w, "; parts terminated at OD %v", m.OverranParts)
		}
		if m.Preemptions > 0 {
			fmt.Fprintf(w, "; preempted %dx (last by %s)", m.Preemptions, m.Preemptor)
		}
		fmt.Fprintln(w)
	}
}

func writeUtilization(w io.Writer, a *trace.Analysis, buckets int) {
	fmt.Fprintf(w, "\nper-CPU utilization (%d buckets over %v):\n", buckets, a.Span)
	for _, c := range a.CPUs {
		fmt.Fprintf(w, "  cpu%-3d", c.CPU)
		for _, u := range c.Utilization(buckets, a.Span) {
			fmt.Fprintf(w, " %4.0f%%", u*100)
		}
		fmt.Fprintln(w)
	}
}
