package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/trace"
)

func testFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("rtseed-trace", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlags(t *testing.T) {
	o, err := parseFlags(testFlagSet(), []string{"-hist", "-misses", "-util", "4", "-check", "t.rtt"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.hist || !o.misses || o.util != 4 || !o.check || o.file != "t.rtt" {
		t.Fatalf("options %+v", o)
	}
	if _, err := parseFlags(testFlagSet(), nil); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := parseFlags(testFlagSet(), []string{"a.rtt", "b.rtt"}); err == nil {
		t.Fatal("two files accepted")
	}
	if _, err := parseFlags(testFlagSet(), []string{"-util", "-1", "t.rtt"}); err == nil {
		t.Fatal("negative -util accepted")
	}
}

// writeTestTrace scripts one two-job task with a termination and a miss and
// writes it to a file, returning the path.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	tr := trace.New(trace.Config{CPUs: 2, Capacity: 256})
	ms := func(d int) engine.Time { return engine.At(time.Duration(d) * time.Millisecond) }
	tr.Emit(ms(0), 0, 1, trace.KindJobRelease, 0)
	tr.Emit(ms(1), 0, 1, trace.KindMandStart, 0)
	tr.Emit(ms(1), 0, 1, trace.KindDispatch, 0)
	tr.Emit(ms(5), 1, 2, trace.KindOptStart, trace.PackJobPart(0, 0))
	tr.Emit(ms(7), 1, 2, trace.KindOptEnd, trace.PackJobPart(0, 0))
	tr.Emit(ms(10), 0, 1, trace.KindJobEnd, 0)
	tr.Emit(ms(10), 0, 1, trace.KindDeadlineMet, 0)
	tr.Emit(ms(10), 0, 1, trace.KindSleep, 0)
	tr.Emit(ms(20), 0, 1, trace.KindJobRelease, 1)
	tr.Emit(ms(21), 0, 1, trace.KindMandStart, 1)
	tr.Emit(ms(21), 0, 1, trace.KindDispatch, 0)
	tr.Emit(ms(30), 1, 2, trace.KindOptTerm, trace.PackJobPart(1, 1))
	tr.Emit(ms(42), 0, 1, trace.KindJobEnd, 1)
	tr.Emit(ms(42), 0, 1, trace.KindDeadlineMiss, trace.PackMiss(1, 2*time.Millisecond))
	tr.Emit(ms(42), 0, 1, trace.KindExit, 0)
	var buf bytes.Buffer
	threads := []trace.ThreadInfo{
		{TID: 1, CPU: 0, Priority: 90, Name: "a.mand"},
		{TID: 2, CPU: 1, Priority: 80, Name: "a.opt0"},
	}
	if err := tr.WriteTo(&buf, threads); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.rtt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummaryAndSections(t *testing.T) {
	path := writeTestTrace(t)
	perfetto := filepath.Join(t.TempDir(), "t.json")
	var buf bytes.Buffer
	o := &options{hist: true, misses: true, util: 3, perfetto: perfetto, check: true, file: path}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"15 records, 2 threads, span 42ms",
		"a", "response time", "release latency",
		"a job 1 at 42ms: late by 2ms",
		"parts terminated at OD [1]",
		"per-CPU utilization (3 buckets",
		"cpu0",
		"wrote " + perfetto,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(perfetto)
	if err != nil {
		t.Fatal(err)
	}
	var pf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &pf); err != nil {
		t.Fatalf("perfetto export is not JSON: %v", err)
	}
	if len(pf.TraceEvents) == 0 {
		t.Fatal("perfetto export has no events")
	}
}

func TestRunCheckFailsOnEmptyTrace(t *testing.T) {
	tr := trace.New(trace.Config{CPUs: 1, Capacity: 8})
	tr.Emit(engine.At(time.Millisecond), 0, 1, trace.KindReady, 0)
	var buf bytes.Buffer
	if err := tr.WriteTo(&buf, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "empty.rtt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run(&out, &options{check: true, file: path})
	if err == nil || !strings.Contains(err.Error(), "empty analysis") {
		t.Fatalf("err = %v, want empty-analysis failure", err)
	}
	// Without -check the same trace still prints a summary.
	if err := run(&out, &options{file: path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsMissingAndCorruptFiles(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, &options{file: filepath.Join(t.TempDir(), "nope.rtt")}); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.rtt")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&out, &options{file: bad}); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
