package main

import (
	"testing"
	"time"
)

func TestRunPRMWPTraceGantt(t *testing.T) {
	if err := run("tau1:m=25ms,w=25ms,T=100ms,o=1s,np=2", "prmwp", "one", "none",
		300*time.Millisecond, 5*time.Millisecond, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunGeneral(t *testing.T) {
	if err := run("tau1:m=25ms,w=25ms,T=100ms", "general", "one", "cpu",
		300*time.Millisecond, 5*time.Millisecond, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run("x", "prmwp", "one", "none", time.Second, 0, false, false); err == nil {
		t.Fatal("bad spec accepted")
	}
	if err := run("a:m=1ms,w=1ms,T=10ms", "bogus", "one", "none", time.Second, 0, false, false); err == nil {
		t.Fatal("bad scheduler accepted")
	}
	if err := run("a:m=1ms,w=1ms,T=10ms", "prmwp", "bogus", "none", time.Second, 0, false, false); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run("a:m=1ms,w=1ms,T=10ms", "prmwp", "one", "bogus", time.Second, 0, false, false); err == nil {
		t.Fatal("bad load accepted")
	}
}
