// Command rtseed-sim runs a task set on the simulated kernel under either
// general scheduling (the Liu & Layland baseline) or P-RMWP semi-fixed-
// priority scheduling, and reports per-task statistics. With -trace it also
// prints the remaining-execution-time curve R_1(t) of the first job — the
// paper's Fig. 3 comparison.
//
// Usage:
//
//	rtseed-sim -tasks "tau1:m=250ms,w=250ms,T=1s,o=1s,np=8" \
//	           -sched prmwp|general -horizon 10s [-trace] \
//	           [-policy one|two|all] [-load none|cpu|cpumem]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/report"
	"rtseed/internal/sched"
	"rtseed/internal/task"
)

func main() {
	spec := flag.String("tasks", "tau1:m=250ms,w=250ms,T=1s,o=1s,np=8", "task set spec")
	schedName := flag.String("sched", "prmwp", "scheduler: prmwp or general")
	horizon := flag.Duration("horizon", 10*time.Second, "simulation horizon")
	policy := flag.String("policy", "one", "assignment policy: one, two, all")
	load := flag.String("load", "none", "background load: none, cpu, cpumem")
	trace := flag.Bool("trace", false, "print the Fig. 3 remaining-time trace of the first task's first job")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart of the first period")
	margin := flag.Duration("margin", 20*time.Millisecond, "overhead margin subtracted from optional deadlines")
	flag.Parse()
	if err := run(*spec, *schedName, *policy, *load, *horizon, *margin, *trace, *gantt); err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-sim:", err)
		os.Exit(1)
	}
}

func parsePolicy(s string) (assign.Policy, error) {
	switch s {
	case "one":
		return assign.OneByOne, nil
	case "two":
		return assign.TwoByTwo, nil
	case "all":
		return assign.AllByAll, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want one, two, all)", s)
	}
}

func parseLoad(s string) (machine.Load, error) {
	switch s {
	case "none":
		return machine.NoLoad, nil
	case "cpu":
		return machine.CPULoad, nil
	case "cpumem":
		return machine.CPUMemoryLoad, nil
	default:
		return 0, fmt.Errorf("unknown load %q (want none, cpu, cpumem)", s)
	}
}

func run(spec, schedName, policyName, loadName string, horizon, margin time.Duration, trace, gantt bool) error {
	set, err := task.ParseSpec(spec)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	load, err := parseLoad(loadName)
	if err != nil {
		return err
	}
	mach, err := machine.New(machine.XeonPhi3120A(), load, machine.DefaultCostModel(), 0x51e)
	if err != nil {
		return err
	}
	k := kernel.New(engine.New(), mach)
	rec := sched.NewRecorder(k)

	switch schedName {
	case "prmwp":
		return runPRMWP(k, rec, set, pol, horizon, margin, trace, gantt)
	case "general":
		return runGeneral(k, rec, set, horizon, trace)
	default:
		return fmt.Errorf("unknown scheduler %q (want prmwp or general)", schedName)
	}
}

func runPRMWP(k *kernel.Kernel, rec *sched.Recorder, set *task.Set,
	pol assign.Policy, horizon, margin time.Duration, trace, gantt bool) error {
	sys, err := sched.NewPRMWP(k, sched.PRMWPConfig{
		Set:            set,
		Horizon:        horizon,
		Policy:         pol,
		OverheadMargin: margin,
	})
	if err != nil {
		return err
	}
	sys.Start()
	k.RunUntil(engine.At(horizon))

	fmt.Printf("P-RMWP over %v, policy %v:\n", horizon, pol)
	tbl := report.NewTable("task", "jobs", "misses", "QoS", "completed", "terminated", "discarded")
	names := make([]string, 0, len(sys.Processes))
	for name := range sys.Processes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := sys.Processes[name].Stats()
		tbl.AddRow(name, st.Jobs, st.DeadlineMisses, st.MeanQoS,
			st.CompletedParts, st.TerminatedParts, st.DiscardedParts)
	}
	fmt.Println(tbl)

	if trace {
		name := names[0]
		p := sys.Processes[name]
		tk := p.Records()[0]
		fmt.Printf("Fig. 3 (semi-fixed-priority): R(t) of %s, job 0 — mandatory then wind-up phase\n", name)
		var taskDef task.Task
		for _, t := range set.Tasks {
			if t.Name == name {
				taskDef = t
			}
		}
		mand := rec.RemainingTime(p.MandatoryThread(), engine.At(tk.Release), engine.At(tk.WindupStart), taskDef.Mandatory)
		printTrace(mand)
		wind := rec.RemainingTime(p.MandatoryThread(), engine.At(tk.WindupStart), engine.At(tk.Deadline), taskDef.Windup)
		printTrace(wind)
	}
	if gantt {
		name := names[0]
		p := sys.Processes[name]
		threads := append([]*kernel.Thread{p.MandatoryThread()}, p.OptionalThreads()...)
		if len(threads) > 9 {
			threads = threads[:9] // keep the chart readable
		}
		var period time.Duration
		for _, t := range set.Tasks {
			if t.Name == name {
				period = t.Period
			}
		}
		fmt.Printf("Gantt chart of %s, first period:\n", name)
		fmt.Println(sched.Gantt(rec, threads, engine.At(0), engine.At(period), 80))
	}
	return nil
}

func runGeneral(k *kernel.Kernel, rec *sched.Recorder, set *task.Set, horizon time.Duration, trace bool) error {
	ordered := set.SortedByRM()
	procs := make([]*sched.GeneralProcess, len(ordered))
	for i, tk := range ordered {
		jobs := int(horizon / tk.Period)
		if jobs < 1 {
			jobs = 1
		}
		g, err := sched.NewGeneralProcess(k, tk, 98-i, 0, jobs)
		if err != nil {
			return err
		}
		procs[i] = g
	}
	for _, g := range procs {
		g.Start()
	}
	k.RunUntil(engine.At(horizon))

	fmt.Printf("General (Liu & Layland) scheduling over %v:\n", horizon)
	tbl := report.NewTable("task", "jobs", "misses")
	for _, g := range procs {
		st := g.Stats()
		tbl.AddRow(g.Thread().Name(), st.Jobs, st.DeadlineMisses)
	}
	fmt.Println(tbl)

	if trace {
		g := procs[0]
		tk := ordered[0]
		fmt.Printf("Fig. 3 (general scheduling): R(t) of %s, job 0 — one m+w block\n", tk.Name)
		printTrace(rec.RemainingTime(g.Thread(), engine.At(0), engine.At(tk.Period), tk.WCET()))
	}
	return nil
}

func printTrace(points []sched.TracePoint) {
	tbl := report.NewTable("t", "R(t)")
	for _, p := range points {
		tbl.AddRow(p.T, p.R)
	}
	fmt.Println(tbl)
}
