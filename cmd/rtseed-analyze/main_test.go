package main

import (
	"flag"
	"io"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"rtseed/internal/task"
)

func testFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("rtseed-analyze", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(testFlagSet(), nil)
	if err != nil {
		t.Fatalf("parseFlags(nil) = %v", err)
	}
	if want := runtime.GOMAXPROCS(0); o.workers != want {
		t.Errorf("default workers = %d, want GOMAXPROCS (%d)", o.workers, want)
	}
	if o.m != 57 || o.accept || o.acceptN != 6 || o.acceptSets != 200 {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestParseFlagsRejectsNonPositiveWorkers(t *testing.T) {
	for _, bad := range []string{"0", "-1", "-8"} {
		_, err := parseFlags(testFlagSet(), []string{"-accept", "-workers", bad})
		if err == nil {
			t.Errorf("-workers %s: accepted, want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "GOMAXPROCS") {
			t.Errorf("-workers %s: error %q should point at the GOMAXPROCS default", bad, err)
		}
	}
}

func TestRunPaperTask(t *testing.T) {
	if err := runWithSource("tau1:m=250ms,w=250ms,T=1s,o=1s,np=8", "", 57); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiTask(t *testing.T) {
	if err := runWithSource("a:m=2ms,w=2ms,T=10ms; b:m=5ms,w=3ms,T=40ms", "", 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnschedulableStillReports(t *testing.T) {
	// Unschedulable sets are reported, not errors.
	if err := runWithSource("a:m=6ms,w=3ms,T=10ms; b:m=6ms,w=3ms,T=10ms", "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadSpec(t *testing.T) {
	if err := runWithSource("garbage", "", 4); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestRunAcceptance(t *testing.T) {
	if err := runAcceptance(3, 10, 2, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAcceptanceSpec(t *testing.T) {
	if err := runAcceptance(3, 10, 2, "flash-crash"); err != nil {
		t.Fatal(err)
	}
	if err := runAcceptance(3, 10, 2, "no-such-spec.json"); err == nil {
		t.Fatal("missing spec accepted")
	}
}

func TestRunFromTaskFile(t *testing.T) {
	set := task.MustNewSet(task.Uniform("f", 2*time.Millisecond, 2*time.Millisecond, 0, 0, 20*time.Millisecond))
	path := filepath.Join(t.TempDir(), "set.json")
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := runWithSource("ignored", path, 4); err != nil {
		t.Fatal(err)
	}
	if err := runWithSource("ignored", filepath.Join(t.TempDir(), "missing.json"), 4); err == nil {
		t.Fatal("missing file accepted")
	}
}
