package main

import (
	"path/filepath"
	"testing"
	"time"

	"rtseed/internal/task"
)

func TestRunPaperTask(t *testing.T) {
	if err := runWithSource("tau1:m=250ms,w=250ms,T=1s,o=1s,np=8", "", 57); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiTask(t *testing.T) {
	if err := runWithSource("a:m=2ms,w=2ms,T=10ms; b:m=5ms,w=3ms,T=40ms", "", 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnschedulableStillReports(t *testing.T) {
	// Unschedulable sets are reported, not errors.
	if err := runWithSource("a:m=6ms,w=3ms,T=10ms; b:m=6ms,w=3ms,T=10ms", "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadSpec(t *testing.T) {
	if err := runWithSource("garbage", "", 4); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestRunAcceptance(t *testing.T) {
	if err := runAcceptance(3, 10, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromTaskFile(t *testing.T) {
	set := task.MustNewSet(task.Uniform("f", 2*time.Millisecond, 2*time.Millisecond, 0, 0, 20*time.Millisecond))
	path := filepath.Join(t.TempDir(), "set.json")
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := runWithSource("ignored", path, 4); err != nil {
		t.Fatal(err)
	}
	if err := runWithSource("ignored", filepath.Join(t.TempDir(), "missing.json"), 4); err == nil {
		t.Fatal("missing file accepted")
	}
}
