// Command rtseed-analyze runs the schedulability analysis of a task set:
// RMWP optional deadlines and response times (the reconstruction of
// Theorem 2 of the paper's reference [5]), the Liu & Layland utilization
// bound, the RM-US highest-priority separation for the HPQ level, breakdown
// utilization, and a partitioned assignment onto M processors.
//
// Usage:
//
//	rtseed-analyze -tasks "tau1:m=250ms,w=250ms,T=1s,o=1s,np=8" [-m 57]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"rtseed/internal/analysis"
	"rtseed/internal/partition"
	"rtseed/internal/report"
	"rtseed/internal/sweep"
	"rtseed/internal/task"
	"rtseed/internal/workload"
)

// options is the parsed command line.
type options struct {
	spec       string
	m          int
	taskFile   string
	accept     bool
	acceptN    int
	acceptSets int
	acceptSpec string
	workers    int
}

// parseFlags registers the command's flags on fs, parses args, and validates
// the result. The flag set is injected so tests can parse without touching
// the process-global flag.CommandLine.
func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.spec, "tasks", "tau1:m=250ms,w=250ms,T=1s,o=1s,np=8",
		"task set spec: name:m=<dur>,w=<dur>,T=<dur>[,o=<dur>,np=<int>]; ...")
	fs.IntVar(&o.m, "m", 57, "number of processors (cores) for RM-US and partitioning")
	fs.StringVar(&o.taskFile, "taskfile", "", "load the task set from a JSON file instead of -tasks")
	fs.BoolVar(&o.accept, "accept", false, "run an acceptance-ratio sweep over random task sets instead")
	fs.IntVar(&o.acceptN, "accept-n", 6, "tasks per random set for -accept")
	fs.IntVar(&o.acceptSets, "accept-sets", 200, "random sets per utilization point for -accept")
	fs.StringVar(&o.acceptSpec, "accept-spec", "", "draw -accept task sets from this workload spec (a builtin name or a JSON file) instead of the uniform default")
	fs.IntVar(&o.workers, "workers", sweep.DefaultWorkers(), "utilization points evaluated in parallel for -accept (results are identical for any value)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := sweep.ValidateWorkers(o.workers); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	o, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-analyze:", err)
		os.Exit(2)
	}
	if o.accept {
		err = runAcceptance(o.acceptN, o.acceptSets, o.workers, o.acceptSpec)
	} else {
		err = runWithSource(o.spec, o.taskFile, o.m)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-analyze:", err)
		os.Exit(1)
	}
}

// runAcceptance sweeps random task sets over total utilization and compares
// the RMWP test against general-RM exact analysis and the Liu & Layland
// bound — the cost of guaranteeing wind-up parts.
func runAcceptance(n, sets, workers int, specArg string) error {
	var utils []float64
	for u := 0.1; u <= 1.0001; u += 0.1 {
		utils = append(utils, u)
	}
	cfg := analysis.AcceptanceConfig{
		N:            n,
		SetsPerPoint: sets,
		Utilizations: utils,
		Seed:         0xacce,
		Workers:      workers,
	}
	genName := "UUniFast"
	if specArg != "" {
		spec, err := loadWorkloadSpec(specArg)
		if err != nil {
			return err
		}
		cfg.Spec = &spec
		genName = fmt.Sprintf("workload spec %s", spec.Name)
	}
	points, err := analysis.AcceptanceRatio(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Acceptance ratio over %d random sets per point (n=%d, %s):\n", sets, n, genName)
	tbl := report.NewTable("ΣU", "RMWP", "general RM (exact)", "Liu&Layland bound")
	for _, p := range points {
		tbl.AddRow(fmt.Sprintf("%.1f", p.Utilization), p.RMWP, p.GeneralRM, p.LLBound)
	}
	fmt.Println(tbl)
	return nil
}

// runWithSource resolves the task set from a file or an inline spec.
func runWithSource(spec, taskFile string, m int) error {
	if taskFile != "" {
		set, err := task.LoadFile(taskFile)
		if err != nil {
			return err
		}
		return analyze(set, m)
	}
	set, err := task.ParseSpec(spec)
	if err != nil {
		return err
	}
	return analyze(set, m)
}

func analyze(set *task.Set, m int) error {

	fmt.Printf("Task set: n=%d, ΣU=%.3f, system U on %d processors=%.3f, hyperperiod=%v\n",
		set.Len(), set.Utilization(), m, set.SystemUtilization(m), set.Hyperperiod())
	fmt.Printf("Liu&Layland bound n(2^(1/n)-1) = %.4f -> utilization test %s\n",
		analysis.LiuLaylandBound(set.Len()), pass(analysis.UtilizationSchedulable(set)))
	fmt.Printf("RM-US threshold M/(3M-2) = %.4f (tasks above it take the HPQ level 99)\n\n",
		analysis.RMUSThreshold(m))

	results, rerr := analysis.RMWP(set)
	tbl := report.NewTable("task", "U", "np", "OD_i", "R^m", "R^w", "HPQ?", "schedulable")
	for _, r := range results {
		tbl.AddRow(r.Task.Name, r.Task.Utilization(), r.Task.NumOptional(),
			r.OptionalDeadline, r.MandatoryResponse, r.WindupResponse,
			analysis.NeedsHighestPriority(r.Task, m), r.Schedulable)
	}
	fmt.Println("RMWP analysis (uniprocessor, RM order):")
	fmt.Println(tbl)
	if rerr != nil && !errors.Is(rerr, analysis.ErrUnschedulable) {
		return rerr
	}

	fmt.Printf("Breakdown utilization scale: %.3f\n\n", analysis.BreakdownUtilization(set, 0.001))

	if rerr == nil {
		sens, err := analysis.Sensitivities(set)
		if err == nil {
			fmt.Println("Per-task sensitivity (largest value keeping the set RMWP-schedulable):")
			stbl := report.NewTable("task", "max m", "m slack", "max w", "w slack")
			for _, se := range sens {
				stbl.AddRow(se.Task, se.MaxMandatory, se.MandatorySlack, se.MaxWindup, se.WindupSlack)
			}
			fmt.Println(stbl)
		}
	}

	asg, err := partition.Partition(set, m, partition.FirstFit)
	if err != nil {
		fmt.Printf("P-RMWP partitioning onto %d processors (first-fit decreasing): FAILED: %v\n", m, err)
		return nil
	}
	fmt.Printf("P-RMWP partitioning onto %d processors (first-fit decreasing): %d used\n",
		m, asg.UsedProcessors())
	ptbl := report.NewTable("processor", "tasks", "U")
	for p, tasks := range asg.PerProcessor {
		if len(tasks) == 0 {
			continue
		}
		names := ""
		for i, t := range tasks {
			if i > 0 {
				names += ","
			}
			names += t.Name
		}
		ptbl.AddRow(p, names, asg.Utilization(p))
	}
	fmt.Println(ptbl)
	return nil
}

func pass(ok bool) string {
	if ok {
		return "PASS"
	}
	return "inconclusive (run exact RMWP analysis below)"
}

// loadWorkloadSpec resolves a workload spec from a builtin name or a JSON
// file path.
func loadWorkloadSpec(arg string) (workload.Spec, error) {
	if spec, ok := workload.BuiltinSpec(arg); ok {
		return spec, nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return workload.Spec{}, err
	}
	defer f.Close()
	return workload.ParseSpec(f)
}
