// Package clean has nothing to report: the suite must exit 0 here.
package clean

// Sum is an ordinary function no analyzer objects to.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
