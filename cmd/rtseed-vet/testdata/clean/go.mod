module vetfixture/clean

go 1.24
