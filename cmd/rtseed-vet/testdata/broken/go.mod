module vetfixture/broken

go 1.24
