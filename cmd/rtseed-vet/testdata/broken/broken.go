// Package broken does not compile: the suite must exit 2 here.
package broken

func Oops() int {
	return undefinedIdentifier
}
