module vetfixture/waived

go 1.24
