// Package waived carries exactly one live waiver-class directive, so the
// -stats census over this tree is deterministic: alloc-ok 1, all else 0.
// The tree still exits 0 — the waiver shields a real finding, so neither
// noalloc nor waiverdrift objects.
package waived

// Grow allocates on purpose inside a noalloc contract; the waiver keeps the
// finding quiet and itself alive.
//
//rtseed:noalloc
func Grow(n int) []int {
	//rtseed:alloc-ok fixture keeps this deliberate allocation
	return make([]int, n)
}
