// Package findings violates the noalloc contract: the suite must exit 1
// here with a file:line finding.
package findings

// Grow allocates despite its annotation.
//
//rtseed:noalloc
func Grow(n int) []byte {
	return make([]byte, n)
}
