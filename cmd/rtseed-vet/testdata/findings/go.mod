module vetfixture/findings

go 1.24
