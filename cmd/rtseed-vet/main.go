// Command rtseed-vet runs the repository's invariant analyzers — determinism,
// noalloc, and eventhandle — over the module, the way go vet runs its passes.
//
// Usage:
//
//	rtseed-vet [-json] [packages]
//
// Packages default to ./... relative to the working directory, which must be
// inside the module. The exit status is 0 when the tree is clean, 1 when any
// analyzer reported findings, and 2 on a load or internal error. With -json
// the findings are emitted as a JSON array ({analyzer, file, line, col,
// message}) for CI annotation; the human format matches go vet's
// file:line:col prefix, so editors hyperlink it as-is.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"rtseed/internal/lint"
	"rtseed/internal/lint/determinism"
	"rtseed/internal/lint/eventhandle"
	"rtseed/internal/lint/noalloc"
)

// analyzers is the vet suite, in reporting order.
var analyzers = []*lint.Analyzer{
	determinism.Analyzer,
	noalloc.Analyzer,
	eventhandle.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	flag.Usage = usage
	flag.Parse()
	diags, err := run(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-vet:", err)
		os.Exit(2)
	}
	if err := print(os.Stdout, diags, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-vet:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: rtseed-vet [-json] [packages]\n\nAnalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

// run loads the packages matching patterns and applies every analyzer whose
// scope covers them, returning the combined findings sorted by position.
func run(dir string, patterns []string) ([]lint.Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, pkg.Directives.Problems...)
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			found, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, found...)
		}
	}
	lint.SortDiagnostics(diags)
	return diags, nil
}

func print(w io.Writer, diags []lint.Diagnostic, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		if diags == nil {
			diags = []lint.Diagnostic{} // emit [] rather than null
		}
		return enc.Encode(diags)
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	return nil
}
