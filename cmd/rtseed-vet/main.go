// Command rtseed-vet runs the repository's invariant analyzers —
// determinism, noalloc, eventhandle, exhaustive, kernelctx, and waiverdrift
// — over the module, the way go vet runs its passes.
//
// Usage:
//
//	rtseed-vet [-json] [packages]
//
// Packages default to ./... relative to the working directory, which must be
// inside the module. The exit status is 0 when the tree is clean, 1 when any
// analyzer reported findings, and 2 on a load or internal error. With -json
// the findings are emitted as a JSON array ({analyzer, file, line, col,
// message}) for CI annotation; the human format matches go vet's
// file:line:col prefix, so editors hyperlink it as-is.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rtseed/internal/lint/suite"
)

func main() {
	os.Exit(vetMain(".", os.Args[1:], os.Stdout, os.Stderr))
}

// vetMain is the whole CLI behind a testable seam: it runs the suite over
// patterns in dir and returns the process exit code (0 clean, 1 findings,
// 2 usage/load/internal error).
func vetMain(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtseed-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	diags, err := suite.Run(dir, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "rtseed-vet:", err)
		return 2
	}
	if err := suite.Print(stdout, diags, *jsonOut); err != nil {
		fmt.Fprintln(stderr, "rtseed-vet:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func usage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, "usage: rtseed-vet [-json] [packages]\n\nAnalyzers:\n")
	for _, a := range suite.Analyzers {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
	fs.PrintDefaults()
}
