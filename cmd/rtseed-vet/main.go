// Command rtseed-vet runs the repository's invariant analyzers —
// determinism, noalloc, eventhandle, exhaustive, kernelctx, and waiverdrift
// — over the module, the way go vet runs its passes.
//
// Usage:
//
//	rtseed-vet [-json] [-sarif] [-stats] [-budget file] [packages]
//
// Packages default to ./... relative to the working directory, which must be
// inside the module. The exit status is 0 when the tree is clean, 1 when any
// analyzer reported findings, and 2 on a load or internal error. With -json
// the findings are emitted as a JSON array ({analyzer, file, line, col,
// message}) for CI annotation; with -sarif they are emitted as a SARIF
// 2.1.0 log for GitHub code scanning upload; the human format matches go
// vet's file:line:col prefix, so editors hyperlink it as-is.
//
// With -stats, stdout carries the waiver-directive census instead — a JSON
// object counting every waiver-class //rtseed: directive in the tree
// ({"directives": {"alloc-ok": 0, ...}}); findings still go to stderr and
// still fail the run. With -budget, the census is compared against the named
// budget file (same JSON shape, committed as lint-budget.json): any count
// above its budget fails the run, and any count below it is accepted
// automatically by rewriting the file, so the waiver population only ever
// ratchets down. Both output forms are published in schema.json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rtseed/internal/lint/suite"
)

func main() {
	os.Exit(vetMain(".", os.Args[1:], os.Stdout, os.Stderr))
}

// vetMain is the whole CLI behind a testable seam: it runs the suite over
// patterns in dir and returns the process exit code (0 clean, 1 findings or
// budget violation, 2 usage/load/internal error).
func vetMain(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtseed-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log for code scanning upload")
	statsOut := fs.Bool("stats", false, "emit the waiver-directive census as JSON on stdout (findings go to stderr)")
	budgetPath := fs.String("budget", "", "compare the census against this budget `file`; growth fails, lowering rewrites it")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *sarifOut && (*jsonOut || *statsOut) {
		fmt.Fprintln(stderr, "rtseed-vet: -sarif cannot be combined with -json or -stats (stdout carries one document)")
		return 2
	}
	diags, stats, err := suite.RunWithStats(dir, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "rtseed-vet:", err)
		return 2
	}
	if *sarifOut {
		if err := suite.PrintSARIF(stdout, dir, diags); err != nil {
			fmt.Fprintln(stderr, "rtseed-vet:", err)
			return 2
		}
	} else if *statsOut {
		if err := suite.PrintStats(stdout, stats); err != nil {
			fmt.Fprintln(stderr, "rtseed-vet:", err)
			return 2
		}
		// Findings move to stderr so stdout stays pure census JSON for
		// redirection into a file or the budget.
		if err := suite.Print(stderr, diags, false); err != nil {
			fmt.Fprintln(stderr, "rtseed-vet:", err)
			return 2
		}
	} else if err := suite.Print(stdout, diags, *jsonOut); err != nil {
		fmt.Fprintln(stderr, "rtseed-vet:", err)
		return 2
	}
	code := 0
	if len(diags) > 0 {
		code = 1
	}
	if *budgetPath != "" {
		if c := checkBudget(dir, *budgetPath, stats, stderr); c > code {
			code = c
		}
	}
	return code
}

// checkBudget enforces the waiver ratchet: every census count at or below its
// budgeted value passes, any count above fails with the directive named, and
// a strictly lower census rewrites the budget file so the improvement sticks.
// The path is resolved relative to dir, matching the package patterns.
func checkBudget(dir, path string, stats suite.Stats, stderr io.Writer) int {
	if !filepath.IsAbs(path) {
		path = filepath.Join(dir, path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "rtseed-vet:", err)
		return 2
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var budget suite.Stats
	if err := dec.Decode(&budget); err != nil {
		fmt.Fprintf(stderr, "rtseed-vet: %s: %v\n", path, err)
		return 2
	}
	grew, lowered := false, false
	for _, name := range suite.WaiverDirectives {
		have := stats.Directives[name]
		allowed, known := budget.Directives[name]
		switch {
		case have > allowed:
			grew = true
			if known {
				fmt.Fprintf(stderr, "rtseed-vet: waiver budget exceeded: %d //rtseed:%s directives, %s allows %d\n",
					have, name, path, allowed)
			} else {
				fmt.Fprintf(stderr, "rtseed-vet: waiver budget exceeded: %d //rtseed:%s directives, but %s has no entry for it\n",
					have, name, path)
			}
		case have < allowed:
			lowered = true
		case !known:
			// Zero count with no budget entry: fill the entry in.
			lowered = true
		}
	}
	for name := range budget.Directives {
		if _, ok := stats.Directives[name]; !ok {
			// A budget entry for a directive that no longer exists —
			// drop it on the next rewrite.
			lowered = true
		}
	}
	if grew {
		fmt.Fprintf(stderr, "rtseed-vet: remove the new waiver or justify raising %s in review\n", path)
		return 1
	}
	if lowered {
		var buf bytes.Buffer
		if err := suite.PrintStats(&buf, stats); err != nil {
			fmt.Fprintln(stderr, "rtseed-vet:", err)
			return 2
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(stderr, "rtseed-vet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "rtseed-vet: waiver budget lowered; regenerated %s\n", path)
	}
	return 0
}

func usage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, "usage: rtseed-vet [-json] [-sarif] [-stats] [-budget file] [packages]\n\nAnalyzers:\n")
	for _, a := range suite.Analyzers {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
	fs.PrintDefaults()
}
