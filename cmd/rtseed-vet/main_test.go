package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rtseed/internal/lint"
	"rtseed/internal/lint/suite"
)

// TestRunCleanOnAnnotatedPackages is the end-to-end check that the annotated
// hot paths pass the full suite: loading, type-checking, directive parsing,
// and every analyzer over the engine and kernel.
func TestRunCleanOnAnnotatedPackages(t *testing.T) {
	diags, err := suite.Run("../..", []string{"./internal/engine", "./internal/kernel"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// --- exit codes over fixture trees -------------------------------------

// vet runs the CLI against one of the testdata mini-modules and returns the
// exit code plus captured output.
func vet(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := vetMain(dir, args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestExitCodeCleanTree(t *testing.T) {
	code, stdout, stderr := vet(t, "testdata/clean")
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (stdout %q, stderr %q)", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean tree printed findings: %q", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	code, stdout, _ := vet(t, "testdata/findings")
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stdout, "findings.go:9:") || !strings.Contains(stdout, "[noalloc]") {
		t.Errorf("finding lacks file:line and analyzer tag: %q", stdout)
	}
}

func TestExitCodeLoadError(t *testing.T) {
	code, _, stderr := vet(t, "testdata/broken")
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if stderr == "" {
		t.Error("load error printed nothing to stderr")
	}
}

func TestExitCodeBadFlag(t *testing.T) {
	code, _, _ := vet(t, "testdata/clean", "-no-such-flag")
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}

// --- -json against the published schema --------------------------------

// schemaFinding mirrors schema.json exactly; DisallowUnknownFields makes the
// decode fail if the CLI starts emitting fields the schema does not publish.
type schemaFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func TestJSONOutputMatchesSchema(t *testing.T) {
	code, stdout, stderr := vet(t, "testdata/findings", "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr %q)", code, stderr)
	}
	dec := json.NewDecoder(strings.NewReader(stdout))
	dec.DisallowUnknownFields()
	var findings []schemaFinding
	if err := dec.Decode(&findings); err != nil {
		t.Fatalf("-json output does not strictly decode against the schema struct: %v\n%s", err, stdout)
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded")
	}
	for _, f := range findings {
		if f.Analyzer == "" || f.File == "" || f.Line < 1 || f.Col < 1 || f.Message == "" {
			t.Errorf("finding violates schema required/minimum constraints: %+v", f)
		}
	}
}

func TestJSONCleanTreeEmitsEmptyArray(t *testing.T) {
	code, stdout, _ := vet(t, "testdata/clean", "-json")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if got := strings.TrimSpace(stdout); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestSchemaFileAgreesWithStruct keeps schema.json and the Go types from
// drifting apart: the findings definition must publish exactly the fields the
// CLI emits (all required), and the stats definition must enumerate exactly
// the waiver directives the suite counts.
func TestSchemaFileAgreesWithStruct(t *testing.T) {
	raw, err := os.ReadFile("schema.json")
	if err != nil {
		t.Fatalf("reading published schema: %v", err)
	}
	var schema struct {
		OneOf []struct {
			Ref string `json:"$ref"`
		} `json:"oneOf"`
		Defs struct {
			Findings struct {
				Type  string `json:"type"`
				Items struct {
					Properties           map[string]json.RawMessage `json:"properties"`
					Required             []string                   `json:"required"`
					AdditionalProperties bool                       `json:"additionalProperties"`
				} `json:"items"`
			} `json:"findings"`
			Stats struct {
				Type       string   `json:"type"`
				Required   []string `json:"required"`
				Properties struct {
					Directives struct {
						PropertyNames struct {
							Enum []string `json:"enum"`
						} `json:"propertyNames"`
					} `json:"directives"`
				} `json:"properties"`
			} `json:"stats"`
		} `json:"$defs"`
	}
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatalf("schema.json is not valid JSON: %v", err)
	}

	refs := map[string]bool{}
	for _, o := range schema.OneOf {
		refs[o.Ref] = true
	}
	for _, want := range []string{"#/$defs/findings", "#/$defs/sarif", "#/$defs/stats"} {
		if !refs[want] {
			t.Errorf("schema oneOf lacks %q", want)
		}
	}

	findings := schema.Defs.Findings
	if findings.Type != "array" {
		t.Errorf("findings type = %q, want array", findings.Type)
	}
	if findings.Items.AdditionalProperties {
		t.Error("findings schema must forbid additional properties")
	}
	structFields := []string{"analyzer", "file", "line", "col", "message"}
	for _, f := range structFields {
		if _, ok := findings.Items.Properties[f]; !ok {
			t.Errorf("schema.json lacks property %q emitted by the CLI", f)
		}
	}
	if len(findings.Items.Properties) != len(structFields) {
		t.Errorf("schema publishes %d properties, CLI emits %d", len(findings.Items.Properties), len(structFields))
	}
	required := map[string]bool{}
	for _, r := range findings.Items.Required {
		required[r] = true
	}
	for _, f := range structFields {
		if !required[f] {
			t.Errorf("schema does not require %q", f)
		}
	}

	stats := schema.Defs.Stats
	if stats.Type != "object" {
		t.Errorf("stats type = %q, want object", stats.Type)
	}
	if len(stats.Required) != 1 || stats.Required[0] != "directives" {
		t.Errorf("stats required = %v, want [directives]", stats.Required)
	}
	enum := map[string]bool{}
	for _, name := range stats.Properties.Directives.PropertyNames.Enum {
		enum[name] = true
	}
	for _, name := range suite.WaiverDirectives {
		if !enum[name] {
			t.Errorf("stats schema does not enumerate directive %q counted by the suite", name)
		}
	}
	if len(enum) != len(suite.WaiverDirectives) {
		t.Errorf("stats schema enumerates %d directives, suite counts %d", len(enum), len(suite.WaiverDirectives))
	}
}

// --- -sarif against the published schema ---------------------------------

// The sarif* structs mirror the $defs/sarif subset of schema.json exactly;
// DisallowUnknownFields makes the decode fail if the CLI starts emitting
// SARIF properties the schema does not publish.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool struct {
		Driver struct {
			Name  string `json:"name"`
			Rules []struct {
				ID               string       `json:"id"`
				ShortDescription sarifMessage `json:"shortDescription"`
			} `json:"rules"`
		} `json:"driver"`
	} `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifResult struct {
	RuleID    string       `json:"ruleId"`
	RuleIndex int          `json:"ruleIndex"`
	Level     string       `json:"level"`
	Message   sarifMessage `json:"message"`
	Locations []struct {
		PhysicalLocation struct {
			ArtifactLocation struct {
				URI string `json:"uri"`
			} `json:"artifactLocation"`
			Region struct {
				StartLine   int `json:"startLine"`
				StartColumn int `json:"startColumn"`
			} `json:"region"`
		} `json:"physicalLocation"`
	} `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

// decodeSARIF strictly decodes a -sarif document and checks the envelope
// invariants every emission must satisfy.
func decodeSARIF(t *testing.T, s string) sarifLog {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(s))
	dec.DisallowUnknownFields()
	var log sarifLog
	if err := dec.Decode(&log); err != nil {
		t.Fatalf("-sarif output does not strictly decode against the schema struct: %v\n%s", err, s)
	}
	if log.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("sarif has %d runs, want exactly 1", len(log.Runs))
	}
	if got := log.Runs[0].Tool.Driver.Name; got != "rtseed-vet" {
		t.Errorf("driver name = %q, want rtseed-vet", got)
	}
	return log
}

func TestSARIFOutputMatchesSchema(t *testing.T) {
	code, stdout, stderr := vet(t, "testdata/findings", "-sarif")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr %q)", code, stderr)
	}
	log := decodeSARIF(t, stdout)
	run := log.Runs[0]
	if len(run.Results) == 0 {
		t.Fatal("no results for a tree with findings")
	}
	rules := map[string]int{}
	for i, r := range run.Tool.Driver.Rules {
		rules[r.ID] = i
	}
	for _, a := range suite.Analyzers {
		if _, ok := rules[a.Name]; !ok {
			t.Errorf("driver rules lack analyzer %q", a.Name)
		}
	}
	for _, r := range run.Results {
		idx, ok := rules[r.RuleID]
		if !ok {
			t.Errorf("result ruleId %q has no driver rule", r.RuleID)
		} else if r.RuleIndex != idx {
			t.Errorf("result ruleIndex = %d, rule %q sits at %d", r.RuleIndex, r.RuleID, idx)
		}
		if r.Level != "error" {
			t.Errorf("result level = %q, want error", r.Level)
		}
		if len(r.Locations) != 1 {
			t.Errorf("result has %d locations, want 1", len(r.Locations))
			continue
		}
		loc := r.Locations[0].PhysicalLocation
		if strings.HasPrefix(loc.ArtifactLocation.URI, "/") || strings.Contains(loc.ArtifactLocation.URI, `\`) {
			t.Errorf("artifact URI %q is not a relative slash path", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine < 1 || loc.Region.StartColumn < 1 {
			t.Errorf("region %+v violates 1-based minimums", loc.Region)
		}
	}
	// The noalloc finding the fixture seeds must anchor to its file.
	found := false
	for _, r := range run.Results {
		if r.RuleID == "noalloc" && strings.HasSuffix(r.Locations[0].PhysicalLocation.ArtifactLocation.URI, "findings.go") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a noalloc result anchored to findings.go; got %s", stdout)
	}
}

func TestSARIFCleanTreeEmitsEmptyResults(t *testing.T) {
	code, stdout, stderr := vet(t, "testdata/clean", "-sarif")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, stderr)
	}
	log := decodeSARIF(t, stdout)
	if log.Runs[0].Results == nil {
		t.Error("clean tree must emit results: [], not null (code scanning rejects a missing array)")
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("clean tree emitted %d results", len(log.Runs[0].Results))
	}
}

func TestSARIFExcludesOtherOutputForms(t *testing.T) {
	for _, args := range [][]string{{"-sarif", "-json"}, {"-sarif", "-stats"}} {
		code, _, stderr := vet(t, "testdata/clean", args...)
		if code != 2 {
			t.Errorf("%v: exit code = %d, want 2 (stderr %q)", args, code, stderr)
		}
	}
}

// --- -stats and -budget over the waived mini-module ----------------------

// schemaStats mirrors the stats definition of schema.json exactly;
// DisallowUnknownFields makes the decode fail if the CLI starts emitting
// fields the schema does not publish.
type schemaStats struct {
	Directives map[string]int `json:"directives"`
}

// decodeStats strictly decodes a -stats document.
func decodeStats(t *testing.T, s string) schemaStats {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(s))
	dec.DisallowUnknownFields()
	var stats schemaStats
	if err := dec.Decode(&stats); err != nil {
		t.Fatalf("-stats output does not strictly decode against the schema struct: %v\n%s", err, s)
	}
	return stats
}

func TestStatsCensusOverWaivedTree(t *testing.T) {
	code, stdout, stderr := vet(t, "testdata/waived", "-stats")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, stderr)
	}
	stats := decodeStats(t, stdout)
	for _, name := range suite.WaiverDirectives {
		want := 0
		if name == "alloc-ok" {
			want = 1
		}
		got, ok := stats.Directives[name]
		if !ok {
			t.Errorf("census lacks directive %q; every known name must appear", name)
		} else if got != want {
			t.Errorf("census[%q] = %d, want %d", name, got, want)
		}
	}
	if len(stats.Directives) != len(suite.WaiverDirectives) {
		t.Errorf("census has %d entries, want %d", len(stats.Directives), len(suite.WaiverDirectives))
	}
}

func TestStatsFindingsGoToStderr(t *testing.T) {
	code, stdout, stderr := vet(t, "testdata/findings", "-stats")
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (findings still fail -stats runs)", code)
	}
	decodeStats(t, stdout) // stdout must stay pure census JSON
	if !strings.Contains(stderr, "[noalloc]") {
		t.Errorf("findings did not reach stderr: %q", stderr)
	}
}

// writeBudget writes a budget file with the given counts and returns its path.
func writeBudget(t *testing.T, counts map[string]int) string {
	t.Helper()
	full := map[string]int{}
	for _, name := range suite.WaiverDirectives {
		full[name] = counts[name]
	}
	raw, err := json.Marshal(schemaStats{Directives: full})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lint-budget.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBudgetGrowthFails(t *testing.T) {
	path := writeBudget(t, map[string]int{"alloc-ok": 0})
	before, _ := os.ReadFile(path)
	code, _, stderr := vet(t, "testdata/waived", "-budget", path)
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "waiver budget exceeded") || !strings.Contains(stderr, "alloc-ok") {
		t.Errorf("budget violation not named: %q", stderr)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Error("budget file was rewritten on a failing run")
	}
}

func TestBudgetLoweringRegenerates(t *testing.T) {
	path := writeBudget(t, map[string]int{"alloc-ok": 5})
	code, _, stderr := vet(t, "testdata/waived", "-budget", path)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "regenerated") {
		t.Errorf("lowering did not announce the rewrite: %q", stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeStats(t, string(raw))
	if got.Directives["alloc-ok"] != 1 {
		t.Errorf("regenerated budget[alloc-ok] = %d, want 1", got.Directives["alloc-ok"])
	}
}

func TestBudgetExactMatchLeavesFileAlone(t *testing.T) {
	path := writeBudget(t, map[string]int{"alloc-ok": 1})
	before, _ := os.ReadFile(path)
	code, _, stderr := vet(t, "testdata/waived", "-budget", path)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, stderr)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Error("budget file was rewritten although the census matches it exactly")
	}
}

func TestBudgetMissingFileIsAnError(t *testing.T) {
	code, _, stderr := vet(t, "testdata/waived", "-budget", filepath.Join(t.TempDir(), "absent.json"))
	if code != 2 {
		t.Errorf("exit code = %d, want 2 (stderr %q)", code, stderr)
	}
}

// TestCommittedBudgetMatchesTree pins the repository's own lint-budget.json
// to the live tree: a mismatch in either direction means a waiver was added
// or removed without running make lint.
func TestCommittedBudgetMatchesTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	_, stats, err := suite.RunWithStats("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile("../../lint-budget.json")
	if err != nil {
		t.Fatalf("reading committed budget: %v", err)
	}
	budget := decodeStats(t, string(raw))
	for _, name := range suite.WaiverDirectives {
		if got, want := stats.Directives[name], budget.Directives[name]; got != want {
			t.Errorf("tree has %d //rtseed:%s directives, lint-budget.json records %d (run make lint to reconcile)",
				got, name, want)
		}
	}
}

// --- output formatting --------------------------------------------------

func TestPrintJSONEmitsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := suite.Print(&buf, nil, true); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty JSON output = %q, want []", got)
	}
}

func TestPrintJSONRoundTrip(t *testing.T) {
	in := []lint.Diagnostic{{
		Analyzer: "determinism",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		File:     "x.go", Line: 3, Col: 7,
		Message: "call to time.Now",
	}}
	var buf bytes.Buffer
	if err := suite.Print(&buf, in, true); err != nil {
		t.Fatal(err)
	}
	var out []lint.Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(out) != 1 || out[0].Analyzer != "determinism" || out[0].Line != 3 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestPrintText(t *testing.T) {
	in := []lint.Diagnostic{{
		Analyzer: "noalloc",
		Pos:      token.Position{Filename: "y.go", Line: 9, Column: 2},
		File:     "y.go", Line: 9, Col: 2,
		Message: "append may grow",
	}}
	var buf bytes.Buffer
	if err := suite.Print(&buf, in, false); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "y.go:9:2: [noalloc] append may grow\n"; got != want {
		t.Errorf("text output = %q, want %q", got, want)
	}
}
