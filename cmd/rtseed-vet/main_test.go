package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"rtseed/internal/lint"
)

// TestRunCleanOnAnnotatedPackages is the end-to-end check that the annotated
// hot paths pass the full suite: loading, type-checking, directive parsing,
// and all three analyzers over the engine and kernel.
func TestRunCleanOnAnnotatedPackages(t *testing.T) {
	diags, err := run("../..", []string{"./internal/engine", "./internal/kernel"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestPrintJSONEmitsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := print(&buf, nil, true); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty JSON output = %q, want []", got)
	}
}

func TestPrintJSONRoundTrip(t *testing.T) {
	in := []lint.Diagnostic{{
		Analyzer: "determinism",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		File:     "x.go", Line: 3, Col: 7,
		Message: "call to time.Now",
	}}
	var buf bytes.Buffer
	if err := print(&buf, in, true); err != nil {
		t.Fatal(err)
	}
	var out []lint.Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(out) != 1 || out[0].Analyzer != "determinism" || out[0].Line != 3 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestPrintText(t *testing.T) {
	in := []lint.Diagnostic{{
		Analyzer: "noalloc",
		Pos:      token.Position{Filename: "y.go", Line: 9, Column: 2},
		File:     "y.go", Line: 9, Col: 2,
		Message: "append may grow",
	}}
	var buf bytes.Buffer
	if err := print(&buf, in, false); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "y.go:9:2: [noalloc] append may grow\n"; got != want {
		t.Errorf("text output = %q, want %q", got, want)
	}
}
