package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"strings"
	"testing"

	"rtseed/internal/lint"
	"rtseed/internal/lint/suite"
)

// TestRunCleanOnAnnotatedPackages is the end-to-end check that the annotated
// hot paths pass the full suite: loading, type-checking, directive parsing,
// and every analyzer over the engine and kernel.
func TestRunCleanOnAnnotatedPackages(t *testing.T) {
	diags, err := suite.Run("../..", []string{"./internal/engine", "./internal/kernel"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// --- exit codes over fixture trees -------------------------------------

// vet runs the CLI against one of the testdata mini-modules and returns the
// exit code plus captured output.
func vet(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := vetMain(dir, args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestExitCodeCleanTree(t *testing.T) {
	code, stdout, stderr := vet(t, "testdata/clean")
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (stdout %q, stderr %q)", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean tree printed findings: %q", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	code, stdout, _ := vet(t, "testdata/findings")
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stdout, "findings.go:9:") || !strings.Contains(stdout, "[noalloc]") {
		t.Errorf("finding lacks file:line and analyzer tag: %q", stdout)
	}
}

func TestExitCodeLoadError(t *testing.T) {
	code, _, stderr := vet(t, "testdata/broken")
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if stderr == "" {
		t.Error("load error printed nothing to stderr")
	}
}

func TestExitCodeBadFlag(t *testing.T) {
	code, _, _ := vet(t, "testdata/clean", "-no-such-flag")
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}

// --- -json against the published schema --------------------------------

// schemaFinding mirrors schema.json exactly; DisallowUnknownFields makes the
// decode fail if the CLI starts emitting fields the schema does not publish.
type schemaFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func TestJSONOutputMatchesSchema(t *testing.T) {
	code, stdout, stderr := vet(t, "testdata/findings", "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr %q)", code, stderr)
	}
	dec := json.NewDecoder(strings.NewReader(stdout))
	dec.DisallowUnknownFields()
	var findings []schemaFinding
	if err := dec.Decode(&findings); err != nil {
		t.Fatalf("-json output does not strictly decode against the schema struct: %v\n%s", err, stdout)
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded")
	}
	for _, f := range findings {
		if f.Analyzer == "" || f.File == "" || f.Line < 1 || f.Col < 1 || f.Message == "" {
			t.Errorf("finding violates schema required/minimum constraints: %+v", f)
		}
	}
}

func TestJSONCleanTreeEmitsEmptyArray(t *testing.T) {
	code, stdout, _ := vet(t, "testdata/clean", "-json")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if got := strings.TrimSpace(stdout); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestSchemaFileAgreesWithStruct keeps schema.json and the Go struct from
// drifting apart: every property the schema publishes must be a field of the
// struct's JSON surface and vice versa, and all must be required.
func TestSchemaFileAgreesWithStruct(t *testing.T) {
	raw, err := os.ReadFile("schema.json")
	if err != nil {
		t.Fatalf("reading published schema: %v", err)
	}
	var schema struct {
		Type  string `json:"type"`
		Items struct {
			Properties           map[string]json.RawMessage `json:"properties"`
			Required             []string                   `json:"required"`
			AdditionalProperties bool                       `json:"additionalProperties"`
		} `json:"items"`
	}
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatalf("schema.json is not valid JSON: %v", err)
	}
	if schema.Type != "array" {
		t.Errorf("schema type = %q, want array", schema.Type)
	}
	if schema.Items.AdditionalProperties {
		t.Error("schema must forbid additional properties")
	}
	structFields := []string{"analyzer", "file", "line", "col", "message"}
	for _, f := range structFields {
		if _, ok := schema.Items.Properties[f]; !ok {
			t.Errorf("schema.json lacks property %q emitted by the CLI", f)
		}
	}
	if len(schema.Items.Properties) != len(structFields) {
		t.Errorf("schema publishes %d properties, CLI emits %d", len(schema.Items.Properties), len(structFields))
	}
	required := map[string]bool{}
	for _, r := range schema.Items.Required {
		required[r] = true
	}
	for _, f := range structFields {
		if !required[f] {
			t.Errorf("schema does not require %q", f)
		}
	}
}

// --- output formatting --------------------------------------------------

func TestPrintJSONEmitsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := suite.Print(&buf, nil, true); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty JSON output = %q, want []", got)
	}
}

func TestPrintJSONRoundTrip(t *testing.T) {
	in := []lint.Diagnostic{{
		Analyzer: "determinism",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		File:     "x.go", Line: 3, Col: 7,
		Message: "call to time.Now",
	}}
	var buf bytes.Buffer
	if err := suite.Print(&buf, in, true); err != nil {
		t.Fatal(err)
	}
	var out []lint.Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(out) != 1 || out[0].Analyzer != "determinism" || out[0].Line != 3 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestPrintText(t *testing.T) {
	in := []lint.Diagnostic{{
		Analyzer: "noalloc",
		Pos:      token.Position{Filename: "y.go", Line: 9, Column: 2},
		File:     "y.go", Line: 9, Col: 2,
		Message: "append may grow",
	}}
	var buf bytes.Buffer
	if err := suite.Print(&buf, in, false); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "y.go:9:2: [noalloc] append may grow\n"; got != want {
		t.Errorf("text output = %q, want %q", got, want)
	}
}
