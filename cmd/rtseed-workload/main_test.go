package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rtseed/internal/workload"
)

// TestSpecGenInspectValidate drives the full subcommand pipeline: write a
// builtin spec, record a trace from it, inspect and validate the results.
func TestSpecGenInspectValidate(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "fc.json")
	trPath := filepath.Join(dir, "fc.rtk")

	var out bytes.Buffer
	if err := run(&out, []string{"spec", "-builtin", "flash-crash", "-o", specPath}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(&out, []string{"validate", specPath}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "valid spec") {
		t.Errorf("validate spec output: %q", out.String())
	}

	out.Reset()
	if err := run(&out, []string{
		"gen", "-spec", specPath, "-clients", "200", "-seed", "6",
		"-horizon", "150ms", "-ticks", "300", "-o", trPath,
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "200 clients, 300 ticks") {
		t.Errorf("gen output: %q", out.String())
	}

	out.Reset()
	if err := run(&out, []string{"inspect", trPath}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workload flash-crash", "## clients by class", "## arrivals by window", "crash"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q", want)
		}
	}

	out.Reset()
	if err := run(&out, []string{"validate", trPath}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "valid trace") {
		t.Errorf("validate trace output: %q", out.String())
	}

	// The recorded trace equals a direct in-process generation: gen adds no
	// hidden state.
	spec, _ := workload.BuiltinSpec("flash-crash")
	src, err := workload.Compile(spec, workload.CompileConfig{Clients: 200, Seed: 6, Horizon: 150 * 1e6})
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := workload.Write(&direct, src.Trace(300)); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(trPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), disk) {
		t.Error("gen output differs from direct generation")
	}
}

// TestGenDeterministic checks two gen runs with identical flags produce
// byte-identical trace files.
func TestGenDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.rtk")
	b := filepath.Join(dir, "b.rtk")
	for _, path := range []string{a, b} {
		var out bytes.Buffer
		if err := run(&out, []string{"gen", "-builtin", "open-close", "-clients", "100", "-o", path}); err != nil {
			t.Fatal(err)
		}
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if !bytes.Equal(da, db) {
		t.Fatal("gen not deterministic")
	}
}

// TestErrors exercises the failure paths: bad subcommand, conflicting and
// missing flags, bad files.
func TestErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.rtk")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},
		{"bogus"},
		{"spec", "-builtin", "nope"},
		{"gen", "-builtin", "steady"}, // missing -o
		{"gen", "-spec", "x.json", "-builtin", "steady", "-o", filepath.Join(dir, "x.rtk")}, // conflict
		{"inspect"},
		{"inspect", bad},
		{"validate", bad},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(&out, args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
