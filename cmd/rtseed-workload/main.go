// Command rtseed-workload generates, records, and inspects workload traces.
//
// Usage:
//
//	rtseed-workload spec -builtin NAME [-o FILE]
//	rtseed-workload gen [-spec FILE|-builtin NAME] [-clients N] [-seed N]
//	                    [-horizon D] [-ticks N] -o FILE.rtk
//	rtseed-workload inspect FILE.rtk
//	rtseed-workload validate FILE
//
// spec writes a builtin spec as editable JSON. gen compiles a spec into its
// deterministic client population, synthesizes a market tick stream, and
// records both as a versioned .rtk trace; feeding that file to
// rtseed-cluster -replay (or rtseed-feedd/-trade -replay for the ticks)
// reproduces the generating run exactly. inspect prints a trace's metadata
// and per-window/per-class breakdown; validate checks a spec JSON or .rtk
// file and exits nonzero on the first problem. Every output is a pure
// function of the flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rtseed/internal/report"
	"rtseed/internal/workload"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rtseed-workload:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: rtseed-workload spec|gen|inspect|validate [flags] (builtins: %s)",
		strings.Join(workload.BuiltinSpecNames(), ", "))
}

// run dispatches the subcommand; w receives the deterministic output.
func run(w io.Writer, args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "spec":
		return runSpec(w, args[1:])
	case "gen":
		return runGen(w, args[1:])
	case "inspect":
		return runInspect(w, args[1:])
	case "validate":
		return runValidate(w, args[1:])
	}
	return usage()
}

// resolveSpec loads -spec FILE or -builtin NAME (exactly one).
func resolveSpec(specFile, builtin string) (workload.Spec, error) {
	switch {
	case specFile != "" && builtin != "":
		return workload.Spec{}, fmt.Errorf("-spec and -builtin are mutually exclusive")
	case builtin != "":
		spec, ok := workload.BuiltinSpec(builtin)
		if !ok {
			return workload.Spec{}, fmt.Errorf("unknown builtin %q (want %s)",
				builtin, strings.Join(workload.BuiltinSpecNames(), ", "))
		}
		return spec, nil
	case specFile != "":
		f, err := os.Open(specFile)
		if err != nil {
			return workload.Spec{}, err
		}
		defer f.Close()
		return workload.ParseSpec(f)
	}
	return workload.Spec{}, fmt.Errorf("need -spec FILE or -builtin NAME")
}

// outWriter opens -o, defaulting to w.
func outWriter(w io.Writer, path string) (io.Writer, func() error, error) {
	if path == "" {
		return w, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func runSpec(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("spec", flag.ContinueOnError)
	builtin := fs.String("builtin", "steady", "builtin spec to write")
	out := fs.String("o", "", "write the JSON spec to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := resolveSpec("", *builtin)
	if err != nil {
		return err
	}
	dst, closeOut, err := outWriter(w, *out)
	if err != nil {
		return err
	}
	if err := workload.WriteSpec(dst, spec); err != nil {
		closeOut()
		return err
	}
	return closeOut()
}

func runGen(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	specFile := fs.String("spec", "", "workload spec JSON file")
	builtin := fs.String("builtin", "", "builtin spec name instead of -spec")
	clients := fs.Int("clients", 10000, "client population size")
	seed := fs.Uint64("seed", 1, "generation seed")
	horizon := fs.Duration("horizon", time.Second, "trace horizon")
	ticks := fs.Int("ticks", 10000, "market ticks to synthesize")
	out := fs.String("o", "", "write the .rtk trace to this file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen needs -o FILE.rtk")
	}
	spec, err := resolveSpec(*specFile, *builtin)
	if err != nil {
		return err
	}
	src, err := workload.Compile(spec, workload.CompileConfig{
		Clients: *clients, Seed: *seed, Horizon: *horizon,
	})
	if err != nil {
		return err
	}
	tr := src.Trace(*ticks)
	if err := workload.WriteFile(*out, tr); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s: workload %s, %d clients, %d ticks, seed %d, horizon %v\n",
		*out, tr.Meta.Name, tr.Meta.Clients, len(tr.Ticks), tr.Meta.Seed, tr.Meta.Horizon)
	return nil
}

func runInspect(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect needs one FILE.rtk argument")
	}
	tr, err := workload.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	m := tr.Meta
	fmt.Fprintf(w, "# rtseed-workload inspect\n\n")
	fmt.Fprintf(w, "workload %s: %d clients, %d ticks, %d symbols, seed %d, horizon %v\n\n",
		m.Name, m.Clients, len(tr.Ticks), m.Symbols, m.Seed, m.Horizon)

	fmt.Fprintf(w, "## clients by class\n\n```\n")
	type classAgg struct {
		clients, tasks int
		util           float64
	}
	var perClass [workload.NumClasses]classAgg
	for _, p := range tr.Clients {
		a := &perClass[p.Class]
		a.clients++
		a.tasks += p.NTasks
		a.util += p.Util
	}
	ct := report.NewTable("class", "clients", "tasks", "mean-util")
	for c := 0; c < workload.NumClasses; c++ {
		a := perClass[c]
		mean := 0.0
		if a.clients > 0 {
			mean = a.util / float64(a.clients)
		}
		ct.AddRow(workload.Class(c).String(), a.clients, a.tasks, mean)
	}
	fmt.Fprintf(w, "%s```\n", ct)

	if len(m.Windows) > 0 {
		fmt.Fprintf(w, "\n## arrivals by window\n\n```\n")
		wt := report.NewTable("window", "span", "rate", "arrivals", "ticks")
		for i, win := range m.Windows {
			arrivals, ticksIn := 0, 0
			for _, p := range tr.Clients {
				if inWindow(p.Arrival, win, i == len(m.Windows)-1) {
					arrivals++
				}
			}
			for _, t := range tr.Ticks {
				if inWindow(t.At, win, i == len(m.Windows)-1) {
					ticksIn++
				}
			}
			wt.AddRow(win.Name, fmt.Sprintf("%v-%v", win.Start, win.End), win.Rate, arrivals, ticksIn)
		}
		fmt.Fprintf(w, "%s```\n", wt)
	}
	return nil
}

// inWindow reports whether instant at falls in win; the last window also
// owns its right edge (the profile clamps at the horizon).
func inWindow(at time.Duration, win workload.ResolvedWindow, last bool) bool {
	if at < win.Start {
		return false
	}
	if last {
		return at <= win.End
	}
	return at < win.End
}

func runValidate(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("validate needs one FILE argument (.rtk trace or spec JSON)")
	}
	path := fs.Arg(0)
	if strings.HasSuffix(path, ".rtk") {
		tr, err := workload.ReadFile(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: valid trace (workload %s, %d clients, %d ticks)\n",
			path, tr.Meta.Name, tr.Meta.Clients, len(tr.Ticks))
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spec, err := workload.ParseSpec(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: valid spec (%s, %d cohorts, %d windows)\n",
		path, spec.Name, len(spec.Cohorts), len(spec.Windows))
	return nil
}
