package rtseed

// Tracing-overhead benchmarks: the per-event cost the tracing subsystem
// adds to the scheduling core, in three modes — tracing off (the nil-check
// baseline), ring-only (flight recorder, records overwritten in place), and
// file-backed (full ring spilled to a sink). The workload is the release-
// only many-task sweep of BenchmarkManyTaskKernel, so every event is
// scheduling-core work and the emit path runs on each of them.
//
// BENCH_PR4.json (make bench-json) records these; the acceptance bar is
// tracing-off within noise of the PR 3 BenchmarkKernelEventThroughput
// baseline and 0 allocs/op in every mode.

import (
	"io"
	"testing"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/sched"
	"rtseed/internal/trace"
)

func BenchmarkTracingOverhead(b *testing.B) {
	modes := []struct {
		name   string
		attach func(k *kernel.Kernel)
	}{
		{"off", func(k *kernel.Kernel) {}},
		{"ring", func(k *kernel.Kernel) {
			k.SetTrace(trace.New(trace.Config{
				CPUs: k.Machine().Topology().NumHWThreads(),
			}))
		}},
		{"file", func(k *kernel.Kernel) {
			k.SetTrace(trace.New(trace.Config{
				CPUs: k.Machine().Topology().NumHWThreads(),
				Sink: io.Discard,
			}))
		}},
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			mach := machine.MustNew(machine.XeonPhi3120A(), machine.NoLoad, noJitter(), 1)
			e := engine.New()
			k := kernel.New(e, mach)
			mode.attach(k)
			sys, err := sched.NewManyTask(k, sched.ManyTaskConfig{
				N:                  128,
				Seed:               0xbeef,
				UtilizationPerTask: 0.15,
				ReleaseOnly:        true,
			})
			if err != nil {
				b.Fatal(err)
			}
			sys.Start()
			for i := 0; i < 64*128; i++ {
				if !e.Step() {
					b.Fatal("engine ran dry during warm-up")
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !e.Step() {
					b.Fatal("engine ran dry")
				}
			}
			b.StopTimer()
			if tr := k.Trace(); tr != nil && tr.Emitted() == 0 {
				b.Fatal("tracer attached but nothing emitted")
			}
			k.Shutdown()
		})
	}
}
