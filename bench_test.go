package rtseed

// One benchmark per table and figure of the paper's evaluation (§V), plus
// ablations for the design choices discussed in §IV. Each Fig. 10-13 bench
// runs the §V-A experiment with b.N jobs and reports the measured mean
// overhead as the custom metric "delta-ns/job"; who-beats-whom and the
// curve shapes are what should match the paper, not absolute nanoseconds
// (the substrate is a simulator — see DESIGN.md §2).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or a single figure with e.g. -bench=Fig13.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"rtseed/internal/analysis"
	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/overhead"
	"rtseed/internal/partition"
	"rtseed/internal/sched"
	"rtseed/internal/task"
	"rtseed/internal/trading"
)

// benchNP is the operating point used for the per-figure benchmarks; the
// full np sweep lives in cmd/rtseed-overhead.
const benchNP = 57

func benchOverhead(b *testing.B, kind overhead.Kind, np int) {
	for _, load := range machine.Loads() {
		for _, pol := range assign.Policies() {
			name := fmt.Sprintf("%s/np=%d/%s", load, np, pol)
			b.Run(name, func(b *testing.B) {
				m, err := overhead.Run(overhead.Config{
					Load:     load,
					Policy:   pol,
					NumParts: np,
					Jobs:     b.N,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.Mean(kind)), "delta-ns/job")
			})
		}
	}
}

// BenchmarkFig10BeginMandatory regenerates Fig. 10: the overhead between
// the release time and the beginning of the mandatory part.
func BenchmarkFig10BeginMandatory(b *testing.B) {
	benchOverhead(b, overhead.DeltaM, benchNP)
}

// BenchmarkFig11SwitchToOptional regenerates Fig. 11: the overhead of
// switching the mandatory thread to the optional thread. The no-load series
// additionally runs np=228 to expose the sharp rise at full occupancy.
func BenchmarkFig11SwitchToOptional(b *testing.B) {
	benchOverhead(b, overhead.DeltaS, benchNP)
	b.Run("No load/np=228/One by One", func(b *testing.B) {
		m, err := overhead.Run(overhead.Config{
			Load:     machine.NoLoad,
			Policy:   assign.OneByOne,
			NumParts: 228,
			Jobs:     b.N,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Mean(overhead.DeltaS)), "delta-ns/job")
	})
}

// BenchmarkFig12BeginOptional regenerates Fig. 12: the overhead of the
// pthread_cond_signal loop waking all parallel optional threads.
func BenchmarkFig12BeginOptional(b *testing.B) {
	benchOverhead(b, overhead.DeltaB, benchNP)
}

// BenchmarkFig13EndOptional regenerates Fig. 13: the overhead of ending the
// parallel optional parts, the largest of the four overheads.
func BenchmarkFig13EndOptional(b *testing.B) {
	benchOverhead(b, overhead.DeltaE, benchNP)
}

// BenchmarkFig3RemainingTimeTrace regenerates Fig. 3: one job under general
// scheduling versus semi-fixed-priority scheduling, reporting the wind-up
// start offset that distinguishes the two schedules.
func BenchmarkFig3RemainingTimeTrace(b *testing.B) {
	b.Run("general", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mach := machine.MustNew(machine.XeonPhi3120A(), machine.NoLoad, noJitter(), 1)
			k := kernel.New(engine.New(), mach)
			tk := task.Uniform("tau", 250*time.Millisecond, 250*time.Millisecond, 0, 0, time.Second)
			g, err := sched.NewGeneralProcess(k, tk, 90, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			g.Start()
			k.Run()
			rec := g.Records()[0]
			// General scheduling: m and w run back to back from release.
			b.ReportMetric(float64(rec.Finish), "finish-ns")
		}
	})
	b.Run("semi-fixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mach := machine.MustNew(machine.XeonPhi3120A(), machine.NoLoad, noJitter(), 1)
			k := kernel.New(engine.New(), mach)
			tk := task.Uniform("tau", 250*time.Millisecond, 150*time.Millisecond, 2*time.Second, 1, time.Second)
			cpus, err := assign.HWThreads(mach.Topology(), assign.OneByOne, 1)
			if err != nil {
				b.Fatal(err)
			}
			p, err := core.NewProcess(k, core.Config{
				Task: tk, MandatoryPriority: 90, MandatoryCPU: 0,
				OptionalCPUs: cpus, OptionalDeadline: 750 * time.Millisecond, Jobs: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			p.Start()
			k.Run()
			rec := p.Records()[0]
			// Semi-fixed: the wind-up waits for the optional deadline.
			b.ReportMetric(float64(rec.WindupStart), "windup-start-ns")
		}
	})
}

// BenchmarkTableITermination regenerates Table I behaviourally: per
// mechanism, the wind-up start lag behind the optional deadline
// ("overshoot-ns/job") and the deadline misses over the run. sigjmp cuts at
// the deadline every job; periodic check overshoots by its check period;
// try-catch loses the timer after the first job and starts missing.
func BenchmarkTableITermination(b *testing.B) {
	mechanisms := []core.Termination{
		core.SigjmpTermination{},
		core.PeriodicCheckTermination{Period: 7 * time.Millisecond},
		core.TryCatchTermination{},
	}
	for _, mech := range mechanisms {
		mech := mech
		b.Run(mech.Name(), func(b *testing.B) {
			mach := machine.MustNew(machine.Topology{Cores: 8, ThreadsPerCore: 4},
				machine.NoLoad, noJitter(), 3)
			k := kernel.New(engine.New(), mach)
			tk := task.Uniform("t", 20*time.Millisecond, 20*time.Millisecond,
				time.Second, 2, 100*time.Millisecond)
			cpus, err := assign.HWThreads(mach.Topology(), assign.OneByOne, 2)
			if err != nil {
				b.Fatal(err)
			}
			var lag time.Duration
			var lagJobs int
			p, err := core.NewProcess(k, core.Config{
				Task: tk, MandatoryPriority: 90, MandatoryCPU: 0,
				OptionalCPUs: cpus, OptionalDeadline: 70 * time.Millisecond,
				Jobs: b.N, Termination: mech,
				Probes: core.Probes{OnWindupStart: func(job int, od, start engine.Time) {
					lag += start.Sub(od)
					lagJobs++
				}},
			})
			if err != nil {
				b.Fatal(err)
			}
			p.Start()
			k.RunUntil(engine.At(time.Duration(b.N+2) * 10 * time.Second))
			if lagJobs > 0 {
				b.ReportMetric(float64(lag)/float64(lagJobs), "overshoot-ns/job")
			}
			b.ReportMetric(float64(p.Stats().DeadlineMisses), "misses")
		})
	}
}

// BenchmarkAblationPartitionedVsGlobal quantifies the §IV-B design choice:
// partitioned scheduling (P-RMWP) never migrates, while an idealized global
// RMWP migrates constantly under multi-task interference.
func BenchmarkAblationPartitionedVsGlobal(b *testing.B) {
	set := task.MustNewSet(
		task.Uniform("a", 10*time.Millisecond, 5*time.Millisecond, 0, 0, 40*time.Millisecond),
		task.Uniform("b", 10*time.Millisecond, 5*time.Millisecond, 0, 0, 50*time.Millisecond),
		task.Uniform("c", 10*time.Millisecond, 5*time.Millisecond, 0, 0, 60*time.Millisecond),
	)
	b.Run("global", func(b *testing.B) {
		var migrations, jobs int
		for i := 0; i < b.N; i++ {
			res, err := sched.SimulateGRMWP(set, 2, 600*time.Millisecond, time.Millisecond, 100*time.Microsecond)
			if err != nil {
				b.Fatal(err)
			}
			migrations += res.Migrations
			jobs += res.Jobs
		}
		b.ReportMetric(float64(migrations)/float64(jobs), "migrations/job")
	})
	b.Run("partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sched.SimulatePRMWPMigrations()
		}
		b.ReportMetric(0, "migrations/job")
	})
}

// BenchmarkAblationMiddlewareGlobal measures the §IV-B argument on the real
// middleware: the same task set under P-RMWP (no migration) and under
// middleware-level G-RMWP (least-loaded migration at every release),
// reporting mean release→mandatory-start latency and migrations per job.
// The gap is dramatic (microseconds vs milliseconds) and mostly NOT the
// migration transfer cost: a middleware thread must first get CPU time on
// its old, contended processor just to *decide* to leave, so its release
// latency inherits that processor's queueing — the concrete form of the
// paper's "middleware sits atop an operating system that may not expose
// fine-grained scheduling control".
func BenchmarkAblationMiddlewareGlobal(b *testing.B) {
	set := task.MustNewSet(
		task.Uniform("a", 10*time.Millisecond, 5*time.Millisecond, 0, 0, 50*time.Millisecond),
		task.Uniform("b", 10*time.Millisecond, 5*time.Millisecond, 0, 0, 60*time.Millisecond),
		task.Uniform("c", 10*time.Millisecond, 5*time.Millisecond, 0, 0, 80*time.Millisecond),
	)
	horizon := time.Duration(b.N+1) * 60 * time.Millisecond
	if horizon > 30*time.Second {
		horizon = 30 * time.Second
	}
	lagOf := func(records [][]task.JobRecord) (time.Duration, int) {
		var sum time.Duration
		n := 0
		for _, recs := range records {
			for _, rec := range recs {
				sum += rec.MandatoryStart - rec.Release
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return sum / time.Duration(n), n
	}
	b.Run("prmwp", func(b *testing.B) {
		mach := machine.MustNew(machine.Topology{Cores: 8, ThreadsPerCore: 4}, machine.NoLoad, noJitter(), 3)
		k := kernel.New(engine.New(), mach)
		sys, err := sched.NewPRMWP(k, sched.PRMWPConfig{
			Set: set, Horizon: horizon, Policy: assign.OneByOne,
			Heuristic:      partition.WorstFit,
			OverheadMargin: 3 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.Start()
		k.Run()
		var records [][]task.JobRecord
		for _, p := range sys.Processes {
			records = append(records, p.Records())
		}
		lag, jobs := lagOf(records)
		b.ReportMetric(float64(lag), "release-lag-ns")
		b.ReportMetric(0, "migrations/job")
		_ = jobs
	})
	b.Run("grmwp-middleware", func(b *testing.B) {
		mach := machine.MustNew(machine.Topology{Cores: 8, ThreadsPerCore: 4}, machine.NoLoad, noJitter(), 3)
		k := kernel.New(engine.New(), mach)
		sys, err := sched.NewGRMWP(k, sched.GRMWPConfig{
			Set: set, Horizon: horizon, Policy: assign.OneByOne,
			Processors: 3, OverheadMargin: 3 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.Start()
		k.Run()
		var records [][]task.JobRecord
		for _, p := range sys.Processes {
			records = append(records, p.Records())
		}
		lag, jobs := lagOf(records)
		b.ReportMetric(float64(lag), "release-lag-ns")
		if jobs > 0 {
			b.ReportMetric(float64(sys.Migrations())/float64(jobs), "migrations/job")
		}
	})
}

// BenchmarkAblationOnlineVsOfflineOD quantifies the §I motivation: the
// dynamic-priority baseline computes each job's optional window online
// (one O(active-jobs) scan per job), while semi-fixed-priority scheduling
// computes optional deadlines once, offline.
func BenchmarkAblationOnlineVsOfflineOD(b *testing.B) {
	set := task.MustNewSet(
		task.Uniform("a", 10*time.Millisecond, 10*time.Millisecond, 0, 0, 50*time.Millisecond),
		task.Uniform("b", 10*time.Millisecond, 10*time.Millisecond, 0, 0, 80*time.Millisecond),
		task.Uniform("c", 10*time.Millisecond, 10*time.Millisecond, 0, 0, 100*time.Millisecond),
	)
	b.Run("edf-online", func(b *testing.B) {
		var calcs, jobs int
		for i := 0; i < b.N; i++ {
			res, err := sched.SimulateEDFWP(set, time.Second, time.Millisecond)
			if err != nil {
				b.Fatal(err)
			}
			calcs += res.OnlineCalcs
			jobs += res.Jobs
		}
		b.ReportMetric(float64(calcs)/float64(jobs), "online-calcs/job")
	})
	b.Run("rmwp-offline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analysis.RMWP(set); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(0, "online-calcs/job")
	})
}

// BenchmarkAblationSignalVsBroadcast quantifies the §IV-C design choice:
// RT-Seed signals each parallel optional thread individually (so parts can
// be discarded independently) instead of broadcasting. The bench compares
// the wake-up costs of the two primitives for np waiters.
func BenchmarkAblationSignalVsBroadcast(b *testing.B) {
	for _, mode := range []string{"signal-each", "broadcast"} {
		mode := mode
		b.Run(fmt.Sprintf("%s/np=%d", mode, benchNP), func(b *testing.B) {
			mach := machine.MustNew(machine.XeonPhi3120A(), machine.NoLoad, noJitter(), 1)
			k := kernel.New(engine.New(), mach)
			shared := k.NewCondVar("shared")
			conds := make([]*kernel.CondVar, benchNP)
			for i := range conds {
				conds[i] = k.NewCondVar(fmt.Sprintf("cv%d", i))
			}
			done := k.NewCondVar("done")
			remaining := 0
			for i := 0; i < benchNP; i++ {
				i := i
				cpu := machine.HWThread(1 + i%227)
				w := k.MustNewThread(kernel.ThreadConfig{Name: "w", Priority: 41, CPU: cpu}, func(c *kernel.TCB) {
					for round := 0; round < b.N; round++ {
						if mode == "broadcast" {
							c.CondWait(shared)
						} else {
							c.CondWait(conds[i])
						}
						remaining--
						if remaining == 0 {
							c.CondSignal(done)
						}
					}
				})
				w.Start()
			}
			var wakeTotal time.Duration
			m := k.MustNewThread(kernel.ThreadConfig{Name: "m", Priority: 90, CPU: 0}, func(c *kernel.TCB) {
				for round := 0; round < b.N; round++ {
					c.Sleep(time.Millisecond) // let waiters park
					remaining = benchNP
					start := c.Now()
					if mode == "broadcast" {
						c.CondBroadcast(shared)
					} else {
						for _, cv := range conds {
							c.CondSignal(cv)
						}
					}
					wakeTotal += c.Now().Sub(start)
					for remaining > 0 {
						c.CondWait(done)
					}
				}
			})
			m.Start()
			k.Run()
			b.ReportMetric(float64(wakeTotal)/float64(b.N), "wake-ns/round")
		})
	}
}

// BenchmarkRMWPAnalysis measures the schedulability analysis itself: the
// optional-deadline fixed point over task-set sizes.
func BenchmarkRMWPAnalysis(b *testing.B) {
	for _, n := range []int{1, 8, 32} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tasks := make([]task.Task, n)
			for i := range tasks {
				period := time.Duration(10+i*7) * time.Millisecond
				// Total utilization 0.4 regardless of n, so every size is
				// schedulable and the bench measures analysis cost only.
				part := period / time.Duration(5*n)
				tasks[i] = task.Uniform(fmt.Sprintf("t%d", i),
					part, part, 0, 0, period)
			}
			set := task.MustNewSet(tasks...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := analysis.RMWP(set); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAcceptanceRatio runs the schedulability-cost experiment: the
// fraction of random task sets (UUniFast, n=6) admitted by the RMWP test
// versus exact general-RM analysis at 80% total utilization. RMWP accepts
// fewer sets — the price of guaranteed wind-up parts.
func BenchmarkAcceptanceRatio(b *testing.B) {
	points, err := analysis.AcceptanceRatio(analysis.AcceptanceConfig{
		N:            6,
		SetsPerPoint: max(b.N, 20),
		Utilizations: []float64{0.8},
		Seed:         0xacce,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(points[0].RMWP, "rmwp-accept")
	b.ReportMetric(points[0].GeneralRM, "rm-accept")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkTradingPipeline measures the end-to-end trading application:
// simulated jobs per second through the full middleware stack.
func BenchmarkTradingPipeline(b *testing.B) {
	feed, err := trading.NewFeed(trading.FeedConfig{Seed: 7, Volatility: 0.002})
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := trading.NewPipeline(feed, trading.DefaultTechnical(),
		trading.NewEngine(), trading.NewBroker(), 0)
	if err != nil {
		b.Fatal(err)
	}
	mach := machine.MustNew(machine.XeonPhi3120A(), machine.NoLoad, noJitter(), 7)
	k := kernel.New(engine.New(), mach)
	np := pipe.NumOptional()
	cpus, err := assign.HWThreads(mach.Topology(), assign.OneByOne, np)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProcess(k, core.Config{
		Task:              task.Uniform("trader", 250*time.Millisecond, 150*time.Millisecond, time.Second, np, time.Second),
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  750 * time.Millisecond,
		Jobs:              b.N,
		App: core.App{
			OnMandatory: pipe.OnMandatory,
			OnOptional:  pipe.OnOptional,
			OnWindup:    pipe.OnWindup,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	p.Start()
	k.Run()
	if p.Stats().Jobs != b.N {
		b.Fatalf("ran %d jobs, want %d", p.Stats().Jobs, b.N)
	}
}

// BenchmarkEngineScheduleStep measures the engine's steady-state hot path:
// one Schedule→Step cycle with a warm node pool. The companion test
// TestScheduleStepZeroAlloc asserts the 0 allocs/op this reports.
func BenchmarkEngineScheduleStep(b *testing.B) {
	e := engine.New()
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the node pool
		e.Schedule(e.Now(), 0, fn)
	}
	for e.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now(), 0, fn)
		e.Step()
	}
}

// benchSweepCfg is the reduced Figs. 10-13 grid used by the executor
// benchmarks: 27 independent cells (3 loads x 3 policies x 3 np values).
func benchSweepCfg(workers int) overhead.SweepConfig {
	return overhead.SweepConfig{NumParts: []int{4, 16, 57}, Jobs: 3, Workers: workers}
}

// BenchmarkSweepSequential runs the reduced figure sweep on one worker —
// the pre-parallelism baseline.
func BenchmarkSweepSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := overhead.SweepAll(benchSweepCfg(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel runs the same sweep on GOMAXPROCS workers and
// reports the measured wall-clock speedup over a one-worker run of the
// same grid ("speedup-x"; ~1 on a single-CPU host, ~min(workers, 27) on
// real hardware since the cells are embarrassingly parallel).
func BenchmarkSweepParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	seqStart := time.Now()
	if _, err := overhead.SweepAll(benchSweepCfg(1)); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(seqStart)
	parStart := time.Now()
	if _, err := overhead.SweepAll(benchSweepCfg(workers)); err != nil {
		b.Fatal(err)
	}
	par := time.Since(parStart)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := overhead.SweepAll(benchSweepCfg(workers)); err != nil {
			b.Fatal(err)
		}
	}
	// Reported after the loop: ResetTimer deletes user metrics, so reporting
	// before it silently dropped the speedup from the output.
	b.ReportMetric(float64(seq)/float64(par), "speedup-x")
}

// BenchmarkKernelEventThroughput measures the simulator substrate itself:
// raw engine events per second.
func BenchmarkKernelEventThroughput(b *testing.B) {
	e := engine.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, 0, tick)
		}
	}
	b.ResetTimer()
	e.Schedule(engine.At(0), 0, tick)
	e.Run()
}

func noJitter() machine.CostModel {
	m := machine.DefaultCostModel()
	m.JitterFrac = 0
	return m
}
